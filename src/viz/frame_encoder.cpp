#include "viz/frame_encoder.hpp"

#include "util/json_writer.hpp"

namespace ruru {

std::string FrameEncoder::encode(const ArcFrame& frame) {
  writer_.reset();
  writer_.begin_object()
      .key("type")
      .value("arc_frame")
      .key("seq")
      .value(static_cast<std::uint64_t>(frame.sequence))
      .key("t")
      .value(frame.time.to_sec())
      .key("samples")
      .value(static_cast<std::uint64_t>(frame.samples))
      .key("arcs")
      .begin_array();
  for (const Arc& a : frame.arcs) {
    writer_.begin_object()
        .key("src")
        .value(a.src_city)
        .key("dst")
        .value(a.dst_city)
        .key("src_ll")
        .begin_array()
        .value(a.src_lat)
        .value(a.src_lon)
        .end_array()
        .key("dst_ll")
        .begin_array()
        .value(a.dst_lat)
        .value(a.dst_lon)
        .end_array()
        .key("color")
        .value(to_css(a.color))
        .key("n")
        .value(static_cast<std::uint64_t>(a.count))
        .key("mean_ms")
        .value(a.mean_latency.to_ms())
        .key("max_ms")
        .value(a.max_latency.to_ms())
        .end_object();
  }
  writer_.end_array().end_object();
  return writer_.str();
}

std::string FrameEncoder::encode_pair_stats(const std::vector<PairSummary>& pairs,
                                            std::size_t top_n) {
  writer_.reset();
  writer_.begin_object().key("type").value("pair_stats").key("pairs").begin_array();
  std::size_t emitted = 0;
  for (const auto& p : pairs) {
    if (emitted++ >= top_n) break;
    writer_.begin_object()
        .key("key")
        .value(p.key)
        .key("count")
        .value(static_cast<std::uint64_t>(p.connections))
        .key("min_ms")
        .value(p.min_total.to_ms())
        .key("median_ms")
        .value(p.median_total.to_ms())
        .key("mean_ms")
        .value(p.mean_total.to_ms())
        .key("max_ms")
        .value(p.max_total.to_ms())
        .key("p99_ms")
        .value(p.p99_total.to_ms())
        .end_object();
  }
  writer_.end_array().end_object();
  return writer_.str();
}

}  // namespace ruru
