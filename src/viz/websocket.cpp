#include "viz/websocket.hpp"

#include <cstring>

#include "util/byte_order.hpp"

namespace ruru {

std::array<std::uint8_t, 20> sha1(std::span<const std::uint8_t> data) {
  // Straightforward FIPS 180-1 implementation; throughput is irrelevant
  // (one hash per WebSocket handshake).
  std::uint32_t h[5] = {0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0};

  const std::uint64_t bit_len = static_cast<std::uint64_t>(data.size()) * 8;
  std::vector<std::uint8_t> msg(data.begin(), data.end());
  msg.push_back(0x80);
  while (msg.size() % 64 != 56) msg.push_back(0);
  std::uint8_t len_be[8];
  store_be64(len_be, bit_len);
  msg.insert(msg.end(), len_be, len_be + 8);

  auto rotl = [](std::uint32_t v, int n) { return (v << n) | (v >> (32 - n)); };

  for (std::size_t chunk = 0; chunk < msg.size(); chunk += 64) {
    std::uint32_t w[80];
    for (int i = 0; i < 16; ++i) w[i] = load_be32(&msg[chunk + static_cast<std::size_t>(i) * 4]);
    for (int i = 16; i < 80; ++i) w[i] = rotl(w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16], 1);

    std::uint32_t a = h[0], b = h[1], c = h[2], d = h[3], e = h[4];
    for (int i = 0; i < 80; ++i) {
      std::uint32_t f, k;
      if (i < 20) {
        f = (b & c) | (~b & d);
        k = 0x5A827999;
      } else if (i < 40) {
        f = b ^ c ^ d;
        k = 0x6ED9EBA1;
      } else if (i < 60) {
        f = (b & c) | (b & d) | (c & d);
        k = 0x8F1BBCDC;
      } else {
        f = b ^ c ^ d;
        k = 0xCA62C1D6;
      }
      const std::uint32_t tmp = rotl(a, 5) + f + e + k + w[i];
      e = d;
      d = c;
      c = rotl(b, 30);
      b = a;
      a = tmp;
    }
    h[0] += a;
    h[1] += b;
    h[2] += c;
    h[3] += d;
    h[4] += e;
  }

  std::array<std::uint8_t, 20> digest{};
  for (int i = 0; i < 5; ++i) store_be32(&digest[static_cast<std::size_t>(i) * 4], h[i]);
  return digest;
}

std::string base64_encode(std::span<const std::uint8_t> data) {
  static const char* alphabet =
      "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";
  std::string out;
  out.reserve(((data.size() + 2) / 3) * 4);
  std::size_t i = 0;
  for (; i + 2 < data.size(); i += 3) {
    const std::uint32_t v = (std::uint32_t{data[i]} << 16) | (std::uint32_t{data[i + 1]} << 8) |
                            data[i + 2];
    out.push_back(alphabet[(v >> 18) & 63]);
    out.push_back(alphabet[(v >> 12) & 63]);
    out.push_back(alphabet[(v >> 6) & 63]);
    out.push_back(alphabet[v & 63]);
  }
  if (i + 1 == data.size()) {
    const std::uint32_t v = std::uint32_t{data[i]} << 16;
    out.push_back(alphabet[(v >> 18) & 63]);
    out.push_back(alphabet[(v >> 12) & 63]);
    out.append("==");
  } else if (i + 2 == data.size()) {
    const std::uint32_t v = (std::uint32_t{data[i]} << 16) | (std::uint32_t{data[i + 1]} << 8);
    out.push_back(alphabet[(v >> 18) & 63]);
    out.push_back(alphabet[(v >> 12) & 63]);
    out.push_back(alphabet[(v >> 6) & 63]);
    out.push_back('=');
  }
  return out;
}

std::string websocket_accept_key(std::string_view client_key) {
  static constexpr std::string_view kGuid = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11";
  std::string joined;
  joined.reserve(client_key.size() + kGuid.size());
  joined.append(client_key);
  joined.append(kGuid);
  const auto digest =
      sha1(std::span<const std::uint8_t>(reinterpret_cast<const std::uint8_t*>(joined.data()),
                                         joined.size()));
  return base64_encode(digest);
}

namespace {

void append_header(std::vector<std::uint8_t>& out, WsOpcode opcode, std::size_t len, bool masked,
                   const std::array<std::uint8_t, 4>* mask) {
  out.push_back(static_cast<std::uint8_t>(0x80 | static_cast<std::uint8_t>(opcode)));  // FIN
  const std::uint8_t mask_bit = masked ? 0x80 : 0x00;
  if (len < 126) {
    out.push_back(static_cast<std::uint8_t>(mask_bit | len));
  } else if (len <= 0xffff) {
    out.push_back(static_cast<std::uint8_t>(mask_bit | 126));
    std::uint8_t b[2];
    store_be16(b, static_cast<std::uint16_t>(len));
    out.insert(out.end(), b, b + 2);
  } else {
    out.push_back(static_cast<std::uint8_t>(mask_bit | 127));
    std::uint8_t b[8];
    store_be64(b, len);
    out.insert(out.end(), b, b + 8);
  }
  if (masked) out.insert(out.end(), mask->begin(), mask->end());
}

}  // namespace

std::vector<std::uint8_t> ws_encode_frame(WsOpcode opcode,
                                          std::span<const std::uint8_t> payload) {
  std::vector<std::uint8_t> out;
  out.reserve(payload.size() + 10);
  append_header(out, opcode, payload.size(), false, nullptr);
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

std::vector<std::uint8_t> ws_encode_text(std::string_view text) {
  return ws_encode_frame(WsOpcode::kText,
                         std::span<const std::uint8_t>(
                             reinterpret_cast<const std::uint8_t*>(text.data()), text.size()));
}

std::vector<std::uint8_t> ws_encode_frame_masked(WsOpcode opcode,
                                                 std::span<const std::uint8_t> payload,
                                                 std::array<std::uint8_t, 4> mask) {
  std::vector<std::uint8_t> out;
  out.reserve(payload.size() + 14);
  append_header(out, opcode, payload.size(), true, &mask);
  const std::size_t start = out.size();
  out.insert(out.end(), payload.begin(), payload.end());
  for (std::size_t i = 0; i < payload.size(); ++i) out[start + i] ^= mask[i % 4];
  return out;
}

std::optional<WsFrame> ws_decode_frame(std::span<const std::uint8_t> data) {
  if (data.size() < 2) return std::nullopt;
  WsFrame frame;
  frame.fin = (data[0] & 0x80) != 0;
  frame.opcode = static_cast<WsOpcode>(data[0] & 0x0f);
  const bool masked = (data[1] & 0x80) != 0;
  std::uint64_t len = data[1] & 0x7f;
  std::size_t pos = 2;
  if (len == 126) {
    if (data.size() < 4) return std::nullopt;
    len = load_be16(&data[2]);
    pos = 4;
  } else if (len == 127) {
    if (data.size() < 10) return std::nullopt;
    len = load_be64(&data[2]);
    pos = 10;
  }
  std::array<std::uint8_t, 4> mask{};
  if (masked) {
    if (data.size() < pos + 4) return std::nullopt;
    std::memcpy(mask.data(), &data[pos], 4);
    pos += 4;
  }
  if (data.size() < pos + len) return std::nullopt;
  frame.payload.assign(data.begin() + static_cast<std::ptrdiff_t>(pos),
                       data.begin() + static_cast<std::ptrdiff_t>(pos + len));
  if (masked) {
    for (std::size_t i = 0; i < frame.payload.size(); ++i) frame.payload[i] ^= mask[i % 4];
  }
  frame.wire_size = pos + len;
  return frame;
}

}  // namespace ruru
