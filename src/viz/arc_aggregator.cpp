#include "viz/arc_aggregator.hpp"

namespace ruru {

namespace {

constexpr std::uint32_t kUnlocated = 0xFFFFFFFFu;

std::string city_name(std::uint32_t id) {
  return id == kUnlocated ? std::string("?") : std::string(geo_names().view(id));
}

}  // namespace

void ArcAggregator::add(const EnrichedSample& s) {
  const ArcColor color = scale_.bucket(s.total);
  const Key key{s.client.located ? s.client.city_id : kUnlocated,
                s.server.located ? s.server.city_id : kUnlocated, static_cast<int>(color)};
  std::lock_guard lock(mu_);
  Accum& a = current_[key];
  if (a.count == 0) {
    a.src_lat = s.client.latitude;
    a.src_lon = s.client.longitude;
    a.dst_lat = s.server.latitude;
    a.dst_lon = s.server.longitude;
  }
  ++a.count;
  a.sum_ns += s.total.ns;
  if (s.total.ns > a.max_ns) a.max_ns = s.total.ns;
  ++samples_;
  ++frame_samples_;
}

ArcFrame ArcAggregator::cut_frame(Timestamp now) {
  ArcFrame frame;
  frame.time = now;
  std::lock_guard lock(mu_);
  frame.sequence = sequence_++;
  frame.samples = frame_samples_;
  frame_samples_ = 0;
  frame.arcs.reserve(current_.size());
  for (auto& [key, a] : current_) {
    Arc arc;
    arc.src_city = city_name(key.src);
    arc.dst_city = city_name(key.dst);
    arc.src_lat = a.src_lat;
    arc.src_lon = a.src_lon;
    arc.dst_lat = a.dst_lat;
    arc.dst_lon = a.dst_lon;
    arc.color = static_cast<ArcColor>(key.color);
    arc.count = a.count;
    arc.max_latency = Duration{a.max_ns};
    arc.mean_latency = Duration{a.count != 0 ? a.sum_ns / a.count : 0};
    frame.arcs.push_back(std::move(arc));
  }
  current_.clear();
  return frame;
}

std::uint64_t ArcAggregator::samples_seen() const {
  std::lock_guard lock(mu_);
  return samples_;
}

}  // namespace ruru
