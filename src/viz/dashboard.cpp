#include "viz/dashboard.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

namespace ruru {

double Dashboard::pick_stat(const AggregateResult& r, const std::string& stat) {
  if (stat == "mean") return r.mean;
  if (stat == "max") return r.max;
  if (stat == "min") return r.min;
  if (stat == "p95") return r.p95;
  if (stat == "p99") return r.p99;
  return r.median;
}

std::string Dashboard::render_graph(const std::string& measurement, const TagSet& filter,
                                    Timestamp t0, Timestamp t1, const std::string& stat) const {
  const int width = options_.graph_width;
  const int height = options_.graph_height;
  const Duration step = Duration{(t1 - t0).ns / width};
  if (step.ns <= 0) return "(empty interval)\n";

  const auto windows = db_.window_aggregate(measurement, filter, t0, t1, step);
  std::vector<double> column(static_cast<std::size_t>(width), std::nan(""));
  double vmax = 0;
  for (const auto& w : windows) {
    const auto idx = static_cast<std::size_t>((w.window_start.ns - t0.ns) / step.ns);
    if (idx >= column.size()) continue;
    column[idx] = pick_stat(w.stats, stat);
    vmax = std::max(vmax, column[idx]);
  }
  if (vmax <= 0) return "(no data)\n";

  std::string out;
  char label[64];
  std::snprintf(label, sizeof label, "%s(%s)  peak %.1f ms\n", stat.c_str(),
                measurement.c_str(), vmax);
  out += label;

  // Render rows top-down; a cell is filled when the column value reaches
  // that row's threshold.
  for (int row = height; row >= 1; --row) {
    const double threshold = vmax * (static_cast<double>(row) - 0.5) / height;
    std::snprintf(label, sizeof label, "%8.1f |", vmax * row / height);
    out += label;
    for (int c = 0; c < width; ++c) {
      const double v = column[static_cast<std::size_t>(c)];
      if (std::isnan(v)) {
        out += ' ';
      } else if (v >= threshold) {
        out += options_.ascii_only ? "#" : "█";  // full block
      } else {
        out += ' ';
      }
    }
    out += '\n';
  }
  out += "         +";
  out.append(static_cast<std::size_t>(width), '-');
  out += '\n';
  char left[32];
  char right[32];
  std::snprintf(left, sizeof left, "t=%.0fs", t0.to_sec());
  std::snprintf(right, sizeof right, "t=%.0fs", t1.to_sec());
  std::string axis = "          ";
  axis += left;
  const std::size_t target = 10 + static_cast<std::size_t>(width);
  const std::size_t right_len = std::char_traits<char>::length(right);
  while (axis.size() + right_len < target) axis += ' ';
  axis += right;
  out += axis;
  out += '\n';
  return out;
}

std::string Dashboard::render_stats_strip(const std::string& measurement, const TagSet& filter,
                                          Timestamp t0, Timestamp t1) const {
  const auto r = db_.aggregate(measurement, filter, t0, t1);
  char buf[192];
  std::snprintf(buf, sizeof buf,
                "%s n=%llu  min=%.1fms  median=%.1fms  mean=%.1fms  p95=%.1fms  p99=%.1fms  "
                "max=%.1fms\n",
                measurement.c_str(), static_cast<unsigned long long>(r.count), r.min, r.median,
                r.mean, r.p95, r.p99, r.max);
  return buf;
}

std::string Dashboard::render_pair_table(const std::vector<PairSummary>& pairs) const {
  std::string out;
  char buf[192];
  std::snprintf(buf, sizeof buf, "%-34s %8s %9s %9s %9s\n", "pair", "conns", "median", "mean",
                "p99");
  out += buf;
  std::size_t shown = 0;
  for (const auto& p : pairs) {
    if (shown++ >= options_.top_pairs) break;
    std::snprintf(buf, sizeof buf, "%-34s %8llu %7.1fms %7.1fms %7.1fms\n", p.key.c_str(),
                  static_cast<unsigned long long>(p.connections), p.median_total.to_ms(),
                  p.mean_total.to_ms(), p.p99_total.to_ms());
    out += buf;
  }
  return out;
}

}  // namespace ruru
