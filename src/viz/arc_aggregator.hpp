#pragma once
// Frame-rate-bounded arc batching for the live map.
//
// The browser draws at ~30 fps; the pipeline can complete many thousands
// of handshakes per second.  The aggregator coalesces samples arriving
// within one frame interval by (src city, dst city, color) so each frame
// carries at most one arc per visual distinction, with a count — this is
// what keeps "multiple thousands of connections per second" drawable.

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "analytics/enriched_sample.hpp"
#include "viz/color_scale.hpp"

namespace ruru {

struct Arc {
  std::string src_city;
  std::string dst_city;
  double src_lat = 0.0, src_lon = 0.0;
  double dst_lat = 0.0, dst_lon = 0.0;
  ArcColor color = ArcColor::kGreen;
  std::uint32_t count = 0;         ///< samples coalesced into this arc
  Duration max_latency;            ///< worst total latency among them
  Duration mean_latency;
};

struct ArcFrame {
  Timestamp time;
  std::uint64_t sequence = 0;
  std::vector<Arc> arcs;
  std::uint64_t samples = 0;  ///< raw samples represented by this frame
};

class ArcAggregator {
 public:
  explicit ArcAggregator(ColorScale scale = ColorScale()) : scale_(scale) {}

  /// Thread-safe; called from enrichment workers.
  void add(const EnrichedSample& sample);

  /// Cut a frame: returns everything accumulated since the last cut.
  [[nodiscard]] ArcFrame cut_frame(Timestamp now);

  [[nodiscard]] std::uint64_t samples_seen() const;

 private:
  // Interned city ids, not strings: coalescing a sample into an existing
  // arc is allocation-free.  0xFFFFFFFF marks an unlocated endpoint;
  // names materialize in cut_frame().
  struct Key {
    std::uint32_t src, dst;
    int color;
    bool operator<(const Key& o) const {
      if (src != o.src) return src < o.src;
      if (dst != o.dst) return dst < o.dst;
      return color < o.color;
    }
  };
  struct Accum {
    double src_lat = 0, src_lon = 0, dst_lat = 0, dst_lon = 0;
    std::uint32_t count = 0;
    std::int64_t max_ns = 0;
    std::int64_t sum_ns = 0;
  };

  ColorScale scale_;
  mutable std::mutex mu_;
  std::map<Key, Accum> current_;
  std::uint64_t samples_ = 0;
  std::uint64_t frame_samples_ = 0;
  std::uint64_t sequence_ = 0;
};

}  // namespace ruru
