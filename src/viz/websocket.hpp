#pragma once
// RFC 6455 WebSocket framing + handshake pieces (server side).
//
// The paper pushes enriched measurements "to the frontend (using
// WebSockets)".  This module implements the protocol mechanics a C++
// server needs: the Sec-WebSocket-Accept derivation (SHA-1 + Base64)
// and text/binary/close frame encoding plus client-frame decoding
// (clients mask, servers don't).

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace ruru {

/// SHA-1 (needed only for the WebSocket handshake; not for security).
[[nodiscard]] std::array<std::uint8_t, 20> sha1(std::span<const std::uint8_t> data);

[[nodiscard]] std::string base64_encode(std::span<const std::uint8_t> data);

/// Sec-WebSocket-Accept for a client's Sec-WebSocket-Key (RFC 6455 §4.2.2).
[[nodiscard]] std::string websocket_accept_key(std::string_view client_key);

enum class WsOpcode : std::uint8_t {
  kContinuation = 0x0,
  kText = 0x1,
  kBinary = 0x2,
  kClose = 0x8,
  kPing = 0x9,
  kPong = 0xA,
};

/// Encodes an unmasked (server -> client) frame with FIN set.
[[nodiscard]] std::vector<std::uint8_t> ws_encode_frame(WsOpcode opcode,
                                                        std::span<const std::uint8_t> payload);
[[nodiscard]] std::vector<std::uint8_t> ws_encode_text(std::string_view text);

/// Encodes a masked (client -> server) frame — used by tests and by any
/// embedded client.
[[nodiscard]] std::vector<std::uint8_t> ws_encode_frame_masked(
    WsOpcode opcode, std::span<const std::uint8_t> payload, std::array<std::uint8_t, 4> mask);

struct WsFrame {
  WsOpcode opcode = WsOpcode::kText;
  bool fin = true;
  std::vector<std::uint8_t> payload;  // unmasked
  std::size_t wire_size = 0;          // bytes consumed from the buffer
};

/// Decodes one frame from `data` (either direction; unmasks if needed).
/// Returns nullopt when `data` does not yet hold a complete frame.
[[nodiscard]] std::optional<WsFrame> ws_decode_frame(std::span<const std::uint8_t> data);

}  // namespace ruru
