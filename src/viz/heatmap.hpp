#pragma once
// Latency heatmap: time x latency-band counts — the Grafana heatmap
// panel for "how is the latency *distribution* evolving", which medians
// alone can't show (a bimodal glitch keeps the median flat while a band
// lights up).

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/time.hpp"

namespace ruru {

class LatencyHeatmap {
 public:
  /// `band_edges` ascending; bands are (-inf,e0), [e0,e1), ..., [eN,inf).
  LatencyHeatmap(Duration time_bucket, std::vector<Duration> band_edges);

  /// Default bands suited to WAN latencies: 50/100/150/200/300/600/1000/4000 ms.
  static LatencyHeatmap with_default_bands(Duration time_bucket = Duration::from_sec(10.0));

  void add(Timestamp t, Duration latency);

  [[nodiscard]] std::size_t band_count() const { return edges_.size() + 1; }
  [[nodiscard]] std::uint64_t total() const { return total_; }

  /// Count in (time bucket containing t, band index).
  [[nodiscard]] std::uint64_t count_at(Timestamp t, std::size_t band) const;

  /// ASCII panel over [t0, t1): rows = bands (highest latency on top),
  /// one column per time bucket; glyphs ' .:-=+*#%@' scale with the
  /// column-normalized count.
  [[nodiscard]] std::string render_ascii(Timestamp t0, Timestamp t1) const;

  [[nodiscard]] std::size_t band_for(Duration latency) const;
  [[nodiscard]] std::string band_label(std::size_t band) const;

 private:
  Duration time_bucket_;
  std::vector<Duration> edges_;
  // time bucket index -> per-band counts
  std::map<std::int64_t, std::vector<std::uint64_t>> cells_;
  std::uint64_t total_ = 0;
};

}  // namespace ruru
