#include "core/pipeline.hpp"

#include "anomaly/alert_codec.hpp"
#include "msg/codec.hpp"
#include "util/logging.hpp"

namespace ruru {

RuruPipeline::RuruPipeline(PipelineConfig config, const GeoDatabase& geo, const AsDatabase& as,
                           const Geo6Database* geo6)
    : config_(config),
      geo_(geo),
      as_(as),
      pool_(config.mempool_size, config.mbuf_size),
      link_meter_(config.link_meter_window) {
  NicConfig nic_cfg;
  nic_cfg.num_queues = config_.num_queues;
  nic_cfg.queue_depth = config_.queue_depth;
  nic_cfg.rss_key = config_.rss_key;
  nic_ = std::make_unique<SimNic>(nic_cfg, pool_);

  if (config_.enable_synflood) synflood_ = std::make_unique<SynFloodDetector>(config_.synflood);
  if (config_.enable_conncount) conncount_ = std::make_unique<ConnCountDetector>(config_.conncount);
  if (config_.enable_ewma) ewma_ = std::make_unique<EwmaDetector>(config_.ewma);
  if (config_.enable_periodic) {
    periodic_ = std::make_unique<PeriodicSpikeDetector>(config_.periodic);
  }

  // One worker per RX queue, publishing batched measurements onto the
  // bus: one frame per accumulator flush, weighted by its sample count
  // so every bus counter stays denominated in samples.
  workers_.reserve(config_.num_queues);
  for (std::uint16_t q = 0; q < config_.num_queues; ++q) {
    auto worker = std::make_unique<QueueWorker>(*nic_, q, config_.flow_table_capacity, nullptr,
                                                config_.flow_stale_after);
    worker->set_fast_path(config_.worker_fast_path);
    worker->set_batch_sink(
        [this](std::span<const LatencySample> samples) {
          bus_.publish(encode_latency_batch(samples), samples.size());
          if (synflood_) {
            for (const LatencySample& s : samples) {
              if (s.server.is_v4()) synflood_->on_completion(s.ack_time, s.server.v4);
            }
          }
        },
        config_.bus_batch_size, config_.bus_batch_linger);
    if (synflood_) {
      worker->set_syn_sink(
          [this](Timestamp t, Ipv4Address server) { synflood_->on_syn(t, server); });
    }
    workers_.push_back(std::move(worker));
  }

  enrichment_sub_ = bus_.subscribe(std::string(kLatencyTopic), config_.bus_hwm);
  enrichment_ = std::make_unique<EnrichmentPool>(enrichment_sub_, geo_, as_,
                                                 config_.enrichment_threads, geo6);
  wire_sinks();
}

void RuruPipeline::wire_sinks() {
  enrichment_->add_sink([this](const EnrichedSample& s) {
    city_pairs_.add(s);
    as_pairs_.add(s);
    arcs_.add(s);

    if (config_.tsdb_store_samples) {
      TagSet tags;
      tags.add("src_city", s.client.located ? s.client.city : "?")
          .add("dst_city", s.server.located ? s.server.city : "?")
          .add("src_as", std::to_string(s.client.asn))
          .add("dst_as", std::to_string(s.server.asn));
      tsdb_.write("total_ms", tags, s.completed_at, s.total.to_ms());
      tsdb_.write("internal_ms", tags, s.completed_at, s.internal.to_ms());
      tsdb_.write("external_ms", tags, s.completed_at, s.external.to_ms());
    }

    if (ewma_) {
      std::optional<Alert> alert;
      {
        std::lock_guard lock(ewma_mu_);
        alert = ewma_->update(s.completed_at, s.total.to_ms());
      }
      if (alert) {
        alert->subject = (s.client.located ? s.client.city : "?") + "|" +
                         (s.server.located ? s.server.city : "?");
        bus_.publish(encode_alert(*alert));  // live "ruru.alerts" feed
        alerts_published_.fetch_add(1, std::memory_order_relaxed);
        alerts_.raise(std::move(*alert));
      }
    }
    if (periodic_) {
      // Keyed by *start* time: the firewall delayed connections opened
      // inside the window; their completions land ~4 s later and would
      // smear across buckets.
      std::lock_guard lock(periodic_mu_);
      periodic_->add(s.started_at, s.total);
    }
    if (conncount_) conncount_->add(s);
  });
}

RuruPipeline::~RuruPipeline() { finish(); }

void RuruPipeline::start() {
  if (started_) return;
  started_ = true;
  enrichment_->start();
  for (auto& worker : workers_) {
    QueueWorker* w = worker.get();
    lcores_.launch([w](std::uint32_t, const std::atomic<bool>& stop) { w->run(stop); });
  }
  RURU_LOG(kInfo, "core") << "pipeline started: " << config_.num_queues << " queues, "
                          << config_.enrichment_threads << " enrichment threads";
}

bool RuruPipeline::inject(std::span<const std::uint8_t> frame, Timestamp rx_time) {
  if (config_.enable_link_meter) link_meter_.on_packet(rx_time, frame.size());
  return nic_->inject(frame, rx_time);
}

std::size_t RuruPipeline::inject_burst(std::span<const RxFrame> frames, bool* queued) {
  if (config_.enable_link_meter) {
    // The meter sees the wire, not the queues: every frame counts even
    // if the NIC then drops it.
    for (const RxFrame& f : frames) link_meter_.on_packet(f.rx_time, f.data.size());
  }
  return nic_->inject_burst(frames, queued);
}

void RuruPipeline::finish() {
  if (!started_ || finished_) return;
  finished_ = true;

  // 1. Workers drain their queues, then stop.
  lcores_.stop_and_join();
  // 2. Flush capture-side windowed detectors (they are fed by workers,
  //    which have stopped) and publish their alerts while the bus is
  //    still open so "ruru.alerts" subscribers see them.
  std::vector<Alert> capture_side;
  if (synflood_) synflood_->flush(capture_side);
  for (auto& a : capture_side) {
    bus_.publish(encode_alert(a));
    alerts_published_.fetch_add(1, std::memory_order_relaxed);
    alerts_.raise(std::move(a));
  }
  // 3. Close the bus; enrichment workers drain the backlog and exit.
  //    (conncount/periodic are fed by enrichment, so they flush after —
  //    their end-of-run alerts reach the log but not closed
  //    subscriptions.)
  bus_.close_all();
  enrichment_->stop();
  std::vector<Alert> pending;
  if (conncount_) conncount_->flush(pending);
  if (periodic_) {
    std::lock_guard lock(periodic_mu_);
    for (auto& a : periodic_->alerts()) pending.push_back(a);
  }
  for (auto& a : pending) alerts_.raise(std::move(a));

  // 4. Persist link-load windows ("SNMP view, but per second").
  if (config_.enable_link_meter) {
    link_meter_.flush();
    TagSet tags;
    tags.add("port", "0");
    for (const auto& w : link_meter_.closed()) {
      tsdb_.write("link_mbps", tags, w.start, w.mbps());
      tsdb_.write("link_pps", tags, w.start, w.pps());
    }
  }

  // 5. Apply the storage policy (continuous-query downsampling, then
  //    raw-sample retention anchored at the last capture timestamp).
  if (config_.downsample_window.ns > 0) {
    for (const char* m : {"total_ms", "internal_ms", "external_ms"}) {
      tsdb_.downsample(m, std::string(m) + "_" + config_.downsample_stat,
                       config_.downsample_window, config_.downsample_stat);
    }
  }
  if (config_.retention_horizon.ns > 0 && !link_meter_.closed().empty()) {
    const Timestamp capture_end =
        link_meter_.closed().back().start + config_.link_meter_window;
    // Only raw per-sample series age out; downsampled and link series stay.
    tsdb_.enforce_retention(capture_end, config_.retention_horizon,
                            {"total_ms", "internal_ms", "external_ms"});
  }

  RURU_LOG(kInfo, "core") << "pipeline finished: " << summary().to_string();
}

PipelineSummary RuruPipeline::summary() const {
  PipelineSummary s;
  s.nic = nic_->stats();
  s.mempool_alloc_failures = pool_.alloc_failures();
  for (const auto& w : workers_) {
    const auto& ws = w->stats();
    s.workers.polls += ws.polls;
    s.workers.empty_polls += ws.empty_polls;
    s.workers.packets += ws.packets;
    s.workers.bytes += ws.bytes;
    s.workers.batch_flushes += ws.batch_flushes;
    s.workers.batched_samples += ws.batched_samples;
    s.workers.fast_path_skips += ws.fast_path_skips;
    for (std::size_t i = 0; i < ws.parse_status.size(); ++i) {
      s.workers.parse_status[i] += ws.parse_status[i];
    }
    const auto& ts = w->tracker_stats();
    s.tracker.syn_seen += ts.syn_seen;
    s.tracker.syn_retransmissions += ts.syn_retransmissions;
    s.tracker.synack_seen += ts.synack_seen;
    s.tracker.synack_unmatched += ts.synack_unmatched;
    s.tracker.ack_matched += ts.ack_matched;
    s.tracker.rst_seen += ts.rst_seen;
    s.tracker.samples_emitted += ts.samples_emitted;
    s.tracker.table_drops += ts.table_drops;
  }
  const std::uint64_t alerts_published = alerts_published_.load(std::memory_order_relaxed);
  s.bus_alerts_published = alerts_published;
  s.bus_published = bus_.published() - alerts_published;  // latency samples
  s.bus_dropped = enrichment_sub_->dropped();
  s.enriched = enrichment_->processed();
  s.decode_failures = enrichment_->decode_failures();
  s.unlocated = enrichment_->combined_stats().unlocated;
  s.tsdb_points = tsdb_.points_written();
  s.alerts = alerts_.count();
  return s;
}

}  // namespace ruru
