#include "core/pipeline.hpp"

#include <array>
#include <stdexcept>
#include <string>
#include <unordered_map>

#include "anomaly/alert_codec.hpp"
#include "msg/codec.hpp"
#include "obs/tsc_clock.hpp"
#include "util/logging.hpp"

namespace ruru {

RuruPipeline::RuruPipeline(PipelineConfig config, const GeoDatabase& geo, const AsDatabase& as,
                           const Geo6Database* geo6)
    : config_(config),
      geo_(geo),
      as_(as),
      pool_(config.mempool_size, config.mbuf_size),
      link_meter_(config.link_meter_window),
      // One fan-in lane per worker lcore: worker q is the sole producer
      // on lane q of every subscription, so N workers flushing batches
      // never share a ring cursor.
      bus_(4096, config.num_queues),
      tsdb_(TsdbOptions{config.tsdb_shards, config.tsdb_chunk_points}) {
  // Topology validation: a pin list must cover exactly the workers, or
  // the workers plus the enrichment threads.  (A wrong-length list is a
  // config bug — silently pinning the wrong threads would be worse than
  // failing loudly.)
  const std::size_t enrichers =
      config_.enrichment_threads == 0 ? 1 : config_.enrichment_threads;
  if (!config_.pin_cpus.empty() && config_.pin_cpus.size() != config_.num_queues &&
      config_.pin_cpus.size() != config_.num_queues + enrichers) {
    throw std::invalid_argument(
        "pin_cpus must be empty, num_queues long, or num_queues + enrichment_threads long (got " +
        std::to_string(config_.pin_cpus.size()) + " pins for " +
        std::to_string(config_.num_queues) + " workers + " + std::to_string(enrichers) +
        " enrichers)");
  }
  // Flight recorder first: stages constructed below take handles into
  // its rings.  With sample_n == 0 (or -DRURU_TRACE=0) every handle is
  // inert and the NIC never stamps.
  tracer_.configure(obs::TracerConfig{config_.trace_sample_n, config_.trace_ring_capacity});
  // One timebase for bus stamps, queue-wait, transit and trace spans:
  // the calibrated TSC clock (anchored to steady_clock's epoch, so the
  // swap is invisible to existing metrics consumers).
  if (config_.metrics_enabled || tracer_.enabled()) {
    bus_.set_stamp_clock(&obs::trace_clock());
  }

  NicConfig nic_cfg;
  nic_cfg.num_queues = config_.num_queues;
  nic_cfg.queue_depth = config_.queue_depth;
  nic_cfg.rss_key = config_.rss_key;
  nic_cfg.trace_sample_n = tracer_.enabled() ? config_.trace_sample_n : 0;
  nic_ = std::make_unique<SimNic>(nic_cfg, pool_);

  if (config_.enable_synflood) synflood_ = std::make_unique<SynFloodDetector>(config_.synflood);
  if (config_.enable_conncount) conncount_ = std::make_unique<ConnCountDetector>(config_.conncount);
  if (config_.enable_ewma) ewma_ = std::make_unique<EwmaDetector>(config_.ewma);
  if (config_.enable_periodic) {
    periodic_ = std::make_unique<PeriodicSpikeDetector>(config_.periodic);
  }

  // One worker per RX queue, publishing batched measurements onto the
  // bus: one frame per accumulator flush, weighted by its sample count
  // so every bus counter stays denominated in samples.
  workers_.reserve(config_.num_queues);
  InflowConfig inflow;
  inflow.enabled = config_.inflow_rtt;
  inflow.ring_entries = config_.ts_ring_entries;
  inflow.min_interval = Duration::from_us(static_cast<std::int64_t>(config_.inflow_min_interval_us));
  for (std::uint16_t q = 0; q < config_.num_queues; ++q) {
    auto worker = std::make_unique<QueueWorker>(*nic_, q, config_.flow_table_capacity, nullptr,
                                                config_.flow_stale_after,
                                                config_.flow_probe_window, inflow);
    worker->set_fast_path(config_.worker_fast_path);
    worker->set_loop_kernel(config_.worker_vector_loop ? QueueWorker::LoopKernel::kVector
                                                       : QueueWorker::LoopKernel::kScalar);
    worker->set_prefetch_depth(config_.worker_prefetch_depth);
    worker->set_batch_sink(
        [this, q](std::span<const LatencySample> samples) {
          Message m = encode_latency_batch(samples);
          // Publish stamp (anchors bus queue wait, end-to-end transit
          // and the bus trace span — capture time is virtual in replay,
          // so transit cannot start at the capture stamp) comes from
          // the socket's stamp clock: the calibrated TSC clock, one
          // timebase for metrics and spans.  Worker q is lane q's only
          // publisher: the fan-in ticket CAS is uncontended no matter
          // how many workers flush at once.
          bus_.publish_lane_stamped(q, m, samples.size());
          if (synflood_) {
            for (const LatencySample& s : samples) {
              // Only handshake completions count: an in-flow sample is
              // not a new connection and would dilute the SYN ratio.
              if (s.kind == SampleKind::kHandshake && s.server.is_v4()) {
                synflood_->on_completion(s.ack_time, s.server.v4);
              }
            }
          }
        },
        config_.bus_batch_size, config_.bus_batch_linger);
    if (synflood_) {
      worker->set_syn_sink(
          [this](Timestamp t, Ipv4Address server) { synflood_->on_syn(t, server); });
    }
    workers_.push_back(std::move(worker));
  }
  if (tracer_.enabled()) {
    for (std::uint16_t q = 0; q < config_.num_queues; ++q) {
      workers_[q]->set_trace(tracer_.ring("worker.q" + std::to_string(q)),
                             config_.trace_sample_n);
    }
    // The TSDB sink runs on whichever enrichment thread carries the
    // sample, so its ring is the one multi-producer (locked) ring.
    sink_trace_ = tracer_.shared_ring("tsdb.sink");
  }

  enrichment_sub_ = bus_.subscribe(std::string(kLatencyTopic), config_.bus_hwm);
  enrichment_ = std::make_unique<EnrichmentPool>(enrichment_sub_, geo_, as_,
                                                 config_.enrichment_threads, geo6);
  enrichment_->set_shard_inbox(config_.enrich_shard_inbox);
  register_metrics();
  wire_sinks();

  if (config_.watchdog_enabled) {
    obs::WatchdogConfig wc;
    wc.check_interval = config_.watchdog_interval;
    wc.stall_after = config_.watchdog_stall_after;
    watchdog_ = std::make_unique<obs::Watchdog>(wc, &tracer_);
    // Heartbeats: each stage's own progress counter.  Worker polls and
    // snapshot ticks must always advance (a poll loop spins, a timer
    // ticks); enrichment and the TSDB sink are only stalled if frozen
    // *with* bus backlog — an idle pipeline is healthy.
    for (std::uint16_t q = 0; q < config_.num_queues; ++q) {
      QueueWorker* w = workers_[q].get();
      watchdog_->add_stage("worker.q" + std::to_string(q),
                           [w] { return w->stats().polls.load(); });
    }
    watchdog_->add_stage(
        "enrich", [this] { return enrichment_->processed(); },
        [this] { return static_cast<double>(enrichment_sub_->pending()); });
    if (snapshot_timer_) {
      watchdog_->add_stage("snapshot", [this] { return snapshot_timer_->ticks(); });
    }
    if (config_.tsdb_store_samples) {
      watchdog_->add_stage(
          "tsdb", [this] { return tsdb_.points_written(); },
          [this] { return static_cast<double>(enrichment_sub_->pending()); });
    }
    watchdog_->set_report_sink([this](const obs::WatchdogReport& r) {
      // The flight record itself goes through the logger (the stall
      // summary line was already logged by the watchdog) ...
      RURU_LOG(kWarn, "watchdog") << "\n" << r.dump;
      // ... and the event lands in the pipeline's own TSDB as a
      // ruru.health.* series, same self-ingest pattern as ruru.self.*.
      TagSet tags;
      tags.add("stage", r.stage.empty() ? "-" : r.stage).add("reason", r.reason);
      tsdb_.write("ruru.health." + r.reason, tags, obs::trace_clock().now(),
                  r.reason == "stall" ? r.stalled_for.to_sec() : 1.0);
    });
  }
}

void RuruPipeline::register_metrics() {
  // Callback metrics over the stages' own single-writer StatCells: the
  // data path is not instrumented twice, and a snapshot reads live
  // values race-free. Registered unconditionally — polling only happens
  // at snapshot time, and summary() is a view over these.
  // NIC counters merge the whole-port shard and every producer-lane
  // shard (stats_totals), so the numbers stay truthful under both
  // single-producer and sharded injection topologies.
  metrics_.register_counter_fn("nic.rx_packets",
                               [this] { return nic_->stats_totals().rx_packets.load(); });
  metrics_.register_counter_fn("nic.rx_bytes",
                               [this] { return nic_->stats_totals().rx_bytes.load(); });
  metrics_.register_counter_fn("nic.dropped_no_mbuf",
                               [this] { return nic_->stats_totals().dropped_no_mbuf.load(); });
  metrics_.register_counter_fn("nic.dropped_queue_full",
                               [this] { return nic_->stats_totals().dropped_queue_full.load(); });
  metrics_.register_counter_fn("nic.dropped_oversize",
                               [this] { return nic_->stats_totals().dropped_oversize.load(); });
  metrics_.register_counter_fn("nic.dropped_misrouted",
                               [this] { return nic_->stats_totals().dropped_misrouted.load(); });
  metrics_.register_counter_fn("mempool.alloc_failures",
                               [this] { return pool_.alloc_failures(); });
  for (std::uint16_t q = 0; q < config_.num_queues; ++q) {
    metrics_.register_gauge_fn("nic.queue_occupancy.q" + std::to_string(q), [this, q] {
      return static_cast<double>(nic_->queue_occupancy(q));
    });
  }

  // Worker / tracker / flow-table counters, summed across queues.
  const auto sum_workers = [this](auto field) {
    return [this, field]() -> std::uint64_t {
      std::uint64_t total = 0;
      for (const auto& w : workers_) total += field(*w);
      return total;
    };
  };
  metrics_.register_counter_fn(
      "worker.polls", sum_workers([](const QueueWorker& w) { return w.stats().polls.load(); }));
  metrics_.register_counter_fn("worker.empty_polls", sum_workers([](const QueueWorker& w) {
                                 return w.stats().empty_polls.load();
                               }));
  metrics_.register_counter_fn("worker.packets", sum_workers([](const QueueWorker& w) {
                                 return w.stats().packets.load();
                               }));
  metrics_.register_counter_fn(
      "worker.bytes", sum_workers([](const QueueWorker& w) { return w.stats().bytes.load(); }));
  metrics_.register_counter_fn("worker.fast_path_skips", sum_workers([](const QueueWorker& w) {
                                 return w.stats().fast_path_skips.load();
                               }));
  metrics_.register_counter_fn("worker.batch_flushes", sum_workers([](const QueueWorker& w) {
                                 return w.stats().batch_flushes.load();
                               }));
  metrics_.register_counter_fn("worker.batched_samples", sum_workers([](const QueueWorker& w) {
                                 return w.stats().batched_samples.load();
                               }));
  static constexpr std::array<const char*, 5> kParseNames = {
      "worker.parse_ok", "worker.parse_not_ip", "worker.parse_not_tcp",
      "worker.parse_fragment", "worker.parse_malformed"};
  for (std::size_t i = 0; i < kParseNames.size(); ++i) {
    metrics_.register_counter_fn(kParseNames[i], sum_workers([i](const QueueWorker& w) {
                                   return w.stats().parse_status[i].load();
                                 }));
  }
  metrics_.register_counter_fn("tracker.syn_seen", sum_workers([](const QueueWorker& w) {
                                 return w.tracker_stats().syn_seen.load();
                               }));
  metrics_.register_counter_fn("tracker.syn_retransmissions",
                               sum_workers([](const QueueWorker& w) {
                                 return w.tracker_stats().syn_retransmissions.load();
                               }));
  metrics_.register_counter_fn("tracker.synack_seen", sum_workers([](const QueueWorker& w) {
                                 return w.tracker_stats().synack_seen.load();
                               }));
  metrics_.register_counter_fn("tracker.synack_unmatched", sum_workers([](const QueueWorker& w) {
                                 return w.tracker_stats().synack_unmatched.load();
                               }));
  metrics_.register_counter_fn("tracker.ack_matched", sum_workers([](const QueueWorker& w) {
                                 return w.tracker_stats().ack_matched.load();
                               }));
  metrics_.register_counter_fn("tracker.rst_seen", sum_workers([](const QueueWorker& w) {
                                 return w.tracker_stats().rst_seen.load();
                               }));
  metrics_.register_counter_fn("tracker.samples_emitted", sum_workers([](const QueueWorker& w) {
                                 return w.tracker_stats().samples_emitted.load();
                               }));
  metrics_.register_counter_fn("tracker.table_drops", sum_workers([](const QueueWorker& w) {
                                 return w.tracker_stats().table_drops.load();
                               }));
  metrics_.register_counter_fn("flow.inserts", sum_workers([](const QueueWorker& w) {
                                 return w.tracker().table().stats().inserts.load();
                               }));
  metrics_.register_counter_fn("flow.hits", sum_workers([](const QueueWorker& w) {
                                 return w.tracker().table().stats().hits.load();
                               }));
  metrics_.register_counter_fn("flow.evictions_stale", sum_workers([](const QueueWorker& w) {
                                 return w.tracker().table().stats().evictions_stale.load();
                               }));
  metrics_.register_counter_fn("flow.insert_failures", sum_workers([](const QueueWorker& w) {
                                 return w.tracker().table().stats().insert_failures.load();
                               }));
  metrics_.register_counter_fn("flow.erases", sum_workers([](const QueueWorker& w) {
                                 return w.tracker().table().stats().erases.load();
                               }));
  metrics_.register_counter_fn("flow.tag_mismatches", sum_workers([](const QueueWorker& w) {
                                 return w.tracker().table().stats().tag_mismatches.load();
                               }));
  metrics_.register_counter_fn("flow.sweep_evictions", sum_workers([](const QueueWorker& w) {
                                 return w.tracker().table().stats().sweep_evictions.load();
                               }));
  // In-flow RTT kernel counters (all zero with flow.inflow_rtt off).
  metrics_.register_counter_fn("flow.ts_matches", sum_workers([](const QueueWorker& w) {
                                 return w.tracker().inflow_stats().ts_matches.load();
                               }));
  metrics_.register_counter_fn("flow.ts_ring_evictions", sum_workers([](const QueueWorker& w) {
                                 return w.tracker().inflow_stats().ts_ring_evictions.load();
                               }));
  metrics_.register_counter_fn("flow.ts_wraps", sum_workers([](const QueueWorker& w) {
                                 return w.tracker().inflow_stats().ts_wraps.load();
                               }));
  metrics_.register_counter_fn("flow.inflow_samples", sum_workers([](const QueueWorker& w) {
                                 return w.tracker().inflow_stats().inflow_samples.load();
                               }));
  metrics_.register_counter_fn("flow.one_sided_samples", sum_workers([](const QueueWorker& w) {
                                 return w.tracker().inflow_stats().one_sided_samples.load();
                               }));
  metrics_.register_counter_fn("flow.inflow_rate_limited", sum_workers([](const QueueWorker& w) {
                                 return w.tracker().inflow_stats().rate_limited.load();
                               }));
  metrics_.register_counter_fn("worker.inflow_consumed", sum_workers([](const QueueWorker& w) {
                                 return w.stats().inflow_consumed.load();
                               }));
  // Vector-loop lane accounting (all zero under the scalar oracle loop).
  metrics_.register_counter_fn("worker.lane_skip", sum_workers([](const QueueWorker& w) {
                                 return w.stats().lane_skip.load();
                               }));
  metrics_.register_counter_fn("worker.lane_established", sum_workers([](const QueueWorker& w) {
                                 return w.stats().lane_established.load();
                               }));
  metrics_.register_counter_fn("worker.lane_need_parse", sum_workers([](const QueueWorker& w) {
                                 return w.stats().lane_need_parse.load();
                               }));
  metrics_.register_counter_fn("worker.lane_revalidated", sum_workers([](const QueueWorker& w) {
                                 return w.stats().lane_revalidated.load();
                               }));
  metrics_.register_counter_fn("worker.classify_reprobes", sum_workers([](const QueueWorker& w) {
                                 return w.stats().classify_reprobes.load();
                               }));
  metrics_.register_gauge_fn("flow.entries", [this] {
    std::size_t total = 0;
    for (const auto& w : workers_) total += w->tracker().table().size();
    return static_cast<double>(total);
  });

  // Bus / enrichment / storage / alerting — all backed by atomics or
  // mutex-guarded accessors, safe from the snapshot thread.
  metrics_.register_counter_fn("bus.published", [this] { return bus_.published(); });
  metrics_.register_counter_fn("bus.alerts_published", [this] {
    return alerts_published_.load(std::memory_order_relaxed);
  });
  metrics_.register_counter_fn("bus.delivered",
                               [this] { return enrichment_sub_->delivered(); });
  metrics_.register_counter_fn("bus.dropped", [this] { return enrichment_sub_->dropped(); });
  metrics_.register_gauge_fn("bus.pending", [this] {
    return static_cast<double>(enrichment_sub_->pending());
  });
  metrics_.register_counter_fn("enrich.processed", [this] { return enrichment_->processed(); });
  metrics_.register_counter_fn("enrich.decode_failures",
                               [this] { return enrichment_->decode_failures(); });
  metrics_.register_counter_fn("enrich.unlocated", [this] {
    return enrichment_->combined_stats().unlocated.load();
  });
  metrics_.register_counter_fn("enrich.cache_hits", [this] {
    return enrichment_->combined_stats().cache_hits.load();
  });
  metrics_.register_counter_fn("enrich.cache_misses", [this] {
    return enrichment_->combined_stats().cache_misses.load();
  });
  metrics_.register_counter_fn("tsdb.points", [this] { return tsdb_.points_written(); });
  metrics_.register_counter_fn("alerts.raised",
                               [this] { return static_cast<std::uint64_t>(alerts_.count()); });
  // Self-health: flight-recorder volume and watchdog verdicts.  The
  // watchdog is constructed after this runs, hence the null guards.
  metrics_.register_counter_fn("trace.events", [this] { return tracer_.events_emitted(); });
  metrics_.register_counter_fn("health.stalls", [this] {
    return watchdog_ ? watchdog_->stalls_detected() : 0;
  });
  metrics_.register_counter_fn("health.dumps", [this] {
    return watchdog_ ? watchdog_->dumps_taken() : 0;
  });

  // Enrichment-side hooks: histograms when metrics are on, the flight
  // recorder's per-worker span ring when tracing is on — either alone
  // installs the factory.
  const bool tracing = tracer_.enabled();
  if (config_.metrics_enabled || tracing) {
    enrichment_->set_obs_factory([this, tracing](std::size_t i) {
      PoolObs o;
      if (config_.metrics_enabled) {
        o.queue_wait = metrics_.histogram("bus.queue_wait_ns", i);
        o.enrich_batch = metrics_.histogram("enrich.batch_ns", i);
        o.transit = metrics_.histogram("pipeline.transit_ns", i);
        o.transit_sample_every = config_.transit_sample_every;
      }
      if (tracing) {
        o.trace = tracer_.ring("enrich.w" + std::to_string(i));
        o.trace_sample_n = config_.trace_sample_n;
      }
      return o;
    });
  }

  if (!config_.metrics_enabled) return;

  // Hot-path latency histograms: one shard per writer thread, handed to
  // each stage before it runs.
  for (std::uint16_t q = 0; q < config_.num_queues; ++q) {
    WorkerObs wobs;
    wobs.poll_batch = metrics_.histogram("worker.poll_batch", q);
    wobs.batch_fill = metrics_.histogram("worker.batch_fill", q);
    if (config_.inflow_rtt) {
      wobs.inflow_rtt = metrics_.histogram("flow.inflow_rtt_ns", q);
      wobs.one_sided_delta = metrics_.histogram("flow.one_sided_delta_ns", q);
    }
    if (config_.worker_vector_loop && config_.worker_fast_path) {
      wobs.burst_candidates = metrics_.histogram("worker.burst_candidates", q);
      wobs.candidate_run_len = metrics_.histogram("worker.candidate_run_len", q);
    }
    wobs.flow.probe_groups = metrics_.histogram("flow.probe_groups", q);
    wobs.flow.group_occupancy = metrics_.histogram("flow.group_occupancy", q);
    workers_[q]->set_obs(wobs);
  }
  // TSDB writes happen on whichever enrichment thread runs the sink, so
  // this one shard is shared (record_shared) — the write itself is
  // mutex-guarded, contention is already paid.
  tsdb_write_hist_ = metrics_.histogram("tsdb.write_ns");

  snapshot_timer_ = std::make_unique<obs::SnapshotTimer>(metrics_, config_.metrics_interval);
  if (config_.metrics_self_ingest) {
    snapshot_timer_->add_exporter(std::make_shared<obs::SelfIngestExporter>(tsdb_));
  }
  if (!config_.metrics_prometheus_path.empty()) {
    snapshot_timer_->add_exporter(
        std::make_shared<obs::PrometheusExporter>(config_.metrics_prometheus_path));
  }
  if (!config_.metrics_json_path.empty()) {
    snapshot_timer_->add_exporter(
        std::make_shared<obs::JsonLinesExporter>(config_.metrics_json_path));
  }
}

void RuruPipeline::wire_sinks() {
  // Route-keyed series cache: the sink's four tags are a pure function
  // of (client city, server city, client AS, server AS), so each
  // distinct route builds its TagSet and resolves its three series once.
  // The steady-state TSDB path is three SeriesId appends — no strings,
  // no TagSet, no canonicalization.  Keyed exactly (no lossy hashing):
  // interned city ids + ASNs, with unlocated endpoints collapsed to the
  // same sentinel the "?" tag value collapses them to.
  struct RouteCache {
    struct Hash {
      std::size_t operator()(const std::pair<std::uint64_t, std::uint64_t>& k) const {
        std::uint64_t x = k.first ^ (k.second * 0x9E3779B97F4A7C15ull);
        x ^= x >> 33;
        x *= 0xFF51AFD7ED558CCDull;
        x ^= x >> 33;
        return static_cast<std::size_t>(x);
      }
    };
    std::mutex mu;
    std::unordered_map<std::pair<std::uint64_t, std::uint64_t>, std::array<SeriesId, 3>, Hash>
        map;
    /// In-flow series per route: 4 classes — (kInflow|kOneSided) x
    /// (toward_client) — resolved lazily like the handshake triple.
    struct InflowSeries {
      std::array<SeriesId, 4> sid{};
      std::array<bool, 4> have{};
    };
    std::unordered_map<std::pair<std::uint64_t, std::uint64_t>, InflowSeries, Hash> inflow;
  };
  auto routes = std::make_shared<RouteCache>();
  enrichment_->add_sink([this, routes](const EnrichedSample& s) {
    if (s.kind != SampleKind::kHandshake) {
      // In-flow and one-sided samples carry one measured half, not a
      // three-way handshake: they go to their own TSDB measurements
      // ("inflow_ms" / "onesided_ms", tagged with which half) and stay
      // out of the aggregators and anomaly detectors, whose models
      // (pair RTT means, completion counts) assume handshake triples.
      if (!config_.tsdb_store_samples) return;
      constexpr std::uint64_t kUnlocated = 0xFFFF'FFFFull;
      const std::uint64_t cities =
          ((s.client.located ? std::uint64_t{s.client.city_id} : kUnlocated) << 32) |
          (s.server.located ? std::uint64_t{s.server.city_id} : kUnlocated);
      const std::uint64_t asns =
          (std::uint64_t{s.client.asn} << 32) | std::uint64_t{s.server.asn};
      const std::pair<std::uint64_t, std::uint64_t> key{cities, asns};
      const std::size_t cls =
          (s.kind == SampleKind::kInflow ? 0 : 2) + (s.toward_client ? 1 : 0);
      SeriesId sid{};
      bool cached = false;
      {
        std::lock_guard lock(routes->mu);
        const auto it = routes->inflow.find(key);
        if (it != routes->inflow.end() && it->second.have[cls]) {
          sid = it->second.sid[cls];
          cached = true;
        }
      }
      if (!cached) {
        TagSet tags;
        tags.add("src_city", std::string(s.client.located ? s.client.city() : "?"))
            .add("dst_city", std::string(s.server.located ? s.server.city() : "?"))
            .add("src_as", std::to_string(s.client.asn))
            .add("dst_as", std::to_string(s.server.asn))
            .add("half", s.toward_client ? "internal" : "external");
        sid = tsdb_.series(s.kind == SampleKind::kInflow ? "inflow_ms" : "onesided_ms", tags);
        std::lock_guard lock(routes->mu);
        auto& e = routes->inflow[key];
        e.sid[cls] = sid;
        e.have[cls] = true;
      }
      tsdb_.append(sid, s.completed_at, s.total.to_ms());
      return;
    }
    city_pairs_.add(s);
    as_pairs_.add(s);
    arcs_.add(s);

    if (config_.tsdb_store_samples) {
      constexpr std::uint64_t kUnlocated = 0xFFFF'FFFFull;
      const std::uint64_t cities =
          ((s.client.located ? std::uint64_t{s.client.city_id} : kUnlocated) << 32) |
          (s.server.located ? std::uint64_t{s.server.city_id} : kUnlocated);
      const std::uint64_t asns =
          (std::uint64_t{s.client.asn} << 32) | std::uint64_t{s.server.asn};
      const std::pair<std::uint64_t, std::uint64_t> key{cities, asns};
      std::array<SeriesId, 3> sids;
      bool cached = false;
      {
        std::lock_guard lock(routes->mu);
        if (const auto it = routes->map.find(key); it != routes->map.end()) {
          sids = it->second;
          cached = true;
        }
      }
      if (!cached) {
        // First sample on this route: build the tags and resolve once.
        TagSet tags;
        tags.add("src_city", std::string(s.client.located ? s.client.city() : "?"))
            .add("dst_city", std::string(s.server.located ? s.server.city() : "?"))
            .add("src_as", std::to_string(s.client.asn))
            .add("dst_as", std::to_string(s.server.asn));
        sids = {tsdb_.series("total_ms", tags), tsdb_.series("internal_ms", tags),
                tsdb_.series("external_ms", tags)};
        std::lock_guard lock(routes->mu);
        routes->map.emplace(key, sids);
      }
      // TSC timebase for both the write histogram and the tsdb span —
      // the same clock every other stage stamps with.
      const bool timed = tsdb_write_hist_.attached();
      const bool traced = sink_trace_.attached() && s.trace_id != 0;
      Timestamp t0{};
      if (timed || traced) t0 = obs::trace_clock().now();
      tsdb_.append(sids[0], s.completed_at, s.total.to_ms());
      tsdb_.append(sids[1], s.completed_at, s.internal.to_ms());
      tsdb_.append(sids[2], s.completed_at, s.external.to_ms());
      if (timed || traced) {
        const Timestamp t1 = obs::trace_clock().now();
        if (timed) tsdb_write_hist_.record_shared(t1 - t0);
        if (traced) {
          sink_trace_.span(obs::TraceStage::kTsdb, s.trace_id, t0.ns, (t1 - t0).ns,
                           3 /*points*/, s.queue_id);
        }
      }
    }

    if (ewma_) {
      std::optional<Alert> alert;
      {
        std::lock_guard lock(ewma_mu_);
        alert = ewma_->update(s.completed_at, s.total.to_ms());
      }
      if (alert) {
        alert->subject = std::string(s.client.located ? s.client.city() : "?") + "|" +
                         std::string(s.server.located ? s.server.city() : "?");
        bus_.publish(encode_alert(*alert));  // live "ruru.alerts" feed
        alerts_published_.fetch_add(1, std::memory_order_relaxed);
        alerts_.raise(std::move(*alert));
      }
    }
    if (periodic_) {
      // Keyed by *start* time: the firewall delayed connections opened
      // inside the window; their completions land ~4 s later and would
      // smear across buckets.
      std::lock_guard lock(periodic_mu_);
      periodic_->add(s.started_at, s.total);
    }
    if (conncount_) conncount_->add(s);
  });
}

RuruPipeline::~RuruPipeline() { finish(); }

void RuruPipeline::start() {
  if (started_) return;
  started_ = true;
  // Pin list layout (validated in the constructor): workers first, then
  // optionally one entry per enrichment thread.
  if (config_.pin_cpus.size() > config_.num_queues) {
    enrichment_->set_pin_cpus({config_.pin_cpus.begin() + config_.num_queues,
                               config_.pin_cpus.end()});
  }
  enrichment_->start();
  for (std::uint16_t q = 0; q < config_.num_queues; ++q) {
    QueueWorker* w = workers_[q].get();
    const int cpu = config_.pin_cpus.empty() ? kNoCpuPin : config_.pin_cpus[q];
    lcores_.launch([w](std::uint32_t, const std::atomic<bool>& stop) { w->run(stop); }, cpu);
  }
  if (snapshot_timer_) snapshot_timer_->start();
  if (watchdog_) {
    watchdog_->start();
    obs::Watchdog::install_sigusr1(watchdog_.get());
  }
  RURU_LOG(kInfo, "core") << "pipeline started: " << config_.num_queues << " queues, "
                          << config_.enrichment_threads << " enrichment threads"
                          << (config_.pin_cpus.empty() ? "" : ", pinned topology");
}

bool RuruPipeline::inject(std::span<const std::uint8_t> frame, Timestamp rx_time) {
  if (config_.enable_link_meter) link_meter_.on_packet(rx_time, frame.size());
  return nic_->inject(frame, rx_time);
}

std::size_t RuruPipeline::inject_burst(std::span<const RxFrame> frames, bool* queued) {
  if (config_.enable_link_meter) {
    // The meter sees the wire, not the queues: every frame counts even
    // if the NIC then drops it.
    for (const RxFrame& f : frames) link_meter_.on_packet(f.rx_time, f.data.size());
  }
  return nic_->inject_burst(frames, queued);
}

std::size_t RuruPipeline::inject_shard(std::uint16_t queue, std::span<const RxFrame> frames,
                                       bool* queued) {
  return nic_->inject_shard(queue, frames, queued);
}

void RuruPipeline::meter_frames(std::span<const RxFrame> frames) {
  if (!config_.enable_link_meter) return;
  for (const RxFrame& f : frames) link_meter_.on_packet(f.rx_time, f.data.size());
}

void RuruPipeline::finish() {
  if (!started_ || finished_) return;
  finished_ = true;

  // 0. Watchdog first: stages stopping below would read as stalls.
  if (watchdog_) {
    obs::Watchdog::install_sigusr1(nullptr);
    watchdog_->stop();
  }
  // 1. Workers drain their queues, then stop.
  lcores_.stop_and_join();
  // 2. Flush capture-side windowed detectors (they are fed by workers,
  //    which have stopped) and publish their alerts while the bus is
  //    still open so "ruru.alerts" subscribers see them.
  std::vector<Alert> capture_side;
  if (synflood_) synflood_->flush(capture_side);
  for (auto& a : capture_side) {
    bus_.publish(encode_alert(a));
    alerts_published_.fetch_add(1, std::memory_order_relaxed);
    alerts_.raise(std::move(a));
  }
  // 3. Close the bus; enrichment workers drain the backlog and exit.
  //    (conncount/periodic are fed by enrichment, so they flush after —
  //    their end-of-run alerts reach the log but not closed
  //    subscriptions.)
  bus_.close_all();
  enrichment_->stop();
  // Telemetry thread stops after the stages it watches drain; stop()
  // takes one final snapshot so exporters see the end-of-run totals.
  if (snapshot_timer_) snapshot_timer_->stop();
  std::vector<Alert> pending;
  if (conncount_) conncount_->flush(pending);
  if (periodic_) {
    std::lock_guard lock(periodic_mu_);
    for (auto& a : periodic_->alerts()) pending.push_back(a);
  }
  for (auto& a : pending) alerts_.raise(std::move(a));

  // 4. Persist link-load windows ("SNMP view, but per second").
  if (config_.enable_link_meter) {
    link_meter_.flush();
    TagSet tags;
    tags.add("port", "0");
    for (const auto& w : link_meter_.closed()) {
      tsdb_.write("link_mbps", tags, w.start, w.mbps());
      tsdb_.write("link_pps", tags, w.start, w.pps());
    }
  }

  // 5. Apply the storage policy (continuous-query downsampling, then
  //    raw-sample retention anchored at the last capture timestamp).
  if (config_.downsample_window.ns > 0) {
    for (const char* m : {"total_ms", "internal_ms", "external_ms"}) {
      tsdb_.downsample(m, std::string(m) + "_" + config_.downsample_stat,
                       config_.downsample_window, config_.downsample_stat);
    }
  }
  if (config_.retention_horizon.ns > 0 && !link_meter_.closed().empty()) {
    const Timestamp capture_end =
        link_meter_.closed().back().start + config_.link_meter_window;
    // Only raw per-sample series age out; downsampled and link series stay.
    tsdb_.enforce_retention(capture_end, config_.retention_horizon,
                            {"total_ms", "internal_ms", "external_ms"});
  }

  // 6. Export the flight record now that every stage has emitted its
  //    last span.
  if (!config_.trace_json_path.empty() && tracer_.enabled()) {
    if (tracer_.export_chrome_json_file(config_.trace_json_path)) {
      RURU_LOG(kInfo, "core") << "flight record exported to " << config_.trace_json_path
                              << " (" << tracer_.events_emitted() << " events emitted)";
    } else {
      RURU_LOG(kWarn, "core") << "failed to export flight record to "
                              << config_.trace_json_path;
    }
  }

  RURU_LOG(kInfo, "core") << "pipeline finished: " << summary().to_string();
}

PipelineSummary RuruPipeline::summary() const {
  // A view over the metrics registry: the same callback metrics the
  // snapshot thread exports, merged once. One source of truth.
  const obs::MetricsSnapshot snap = metrics_.snapshot(Timestamp{});
  PipelineSummary s;
  s.nic.rx_packets = snap.counter_or("nic.rx_packets");
  s.nic.rx_bytes = snap.counter_or("nic.rx_bytes");
  s.nic.dropped_no_mbuf = snap.counter_or("nic.dropped_no_mbuf");
  s.nic.dropped_queue_full = snap.counter_or("nic.dropped_queue_full");
  s.nic.dropped_oversize = snap.counter_or("nic.dropped_oversize");
  s.nic.dropped_misrouted = snap.counter_or("nic.dropped_misrouted");
  s.mempool_alloc_failures = snap.counter_or("mempool.alloc_failures");
  s.workers.polls = snap.counter_or("worker.polls");
  s.workers.empty_polls = snap.counter_or("worker.empty_polls");
  s.workers.packets = snap.counter_or("worker.packets");
  s.workers.bytes = snap.counter_or("worker.bytes");
  s.workers.fast_path_skips = snap.counter_or("worker.fast_path_skips");
  s.workers.batch_flushes = snap.counter_or("worker.batch_flushes");
  s.workers.batched_samples = snap.counter_or("worker.batched_samples");
  s.workers.parse_status[0] = snap.counter_or("worker.parse_ok");
  s.workers.parse_status[1] = snap.counter_or("worker.parse_not_ip");
  s.workers.parse_status[2] = snap.counter_or("worker.parse_not_tcp");
  s.workers.parse_status[3] = snap.counter_or("worker.parse_fragment");
  s.workers.parse_status[4] = snap.counter_or("worker.parse_malformed");
  s.tracker.syn_seen = snap.counter_or("tracker.syn_seen");
  s.tracker.syn_retransmissions = snap.counter_or("tracker.syn_retransmissions");
  s.tracker.synack_seen = snap.counter_or("tracker.synack_seen");
  s.tracker.synack_unmatched = snap.counter_or("tracker.synack_unmatched");
  s.tracker.ack_matched = snap.counter_or("tracker.ack_matched");
  s.tracker.rst_seen = snap.counter_or("tracker.rst_seen");
  s.tracker.samples_emitted = snap.counter_or("tracker.samples_emitted");
  s.tracker.table_drops = snap.counter_or("tracker.table_drops");
  const std::uint64_t alerts_published = snap.counter_or("bus.alerts_published");
  s.bus_alerts_published = alerts_published;
  s.bus_published = snap.counter_or("bus.published") - alerts_published;  // latency samples
  s.bus_dropped = snap.counter_or("bus.dropped");
  s.enriched = snap.counter_or("enrich.processed");
  s.decode_failures = snap.counter_or("enrich.decode_failures");
  s.unlocated = snap.counter_or("enrich.unlocated");
  s.tsdb_points = snap.counter_or("tsdb.points");
  s.alerts = snap.counter_or("alerts.raised");
  return s;
}

}  // namespace ruru
