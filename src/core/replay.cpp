#include "core/replay.hpp"

#include <algorithm>
#include <chrono>
#include <memory>
#include <thread>

namespace ruru {

namespace {

/// Bounded yield-retry for one dropped frame (lossless accuracy runs:
/// give the workers time to drain, then count an honest drop).
bool retry_inject(RuruPipeline& pipeline, std::span<const std::uint8_t> frame, Timestamp ts) {
  for (int attempt = 0; attempt < 1'000'000; ++attempt) {
    std::this_thread::yield();
    if (pipeline.inject(frame, ts)) return true;
  }
  return false;  // pipeline wedged; caller counts and moves on
}

/// Lane-local variant: retry one frame on its own producer lane.
bool retry_inject_shard(RuruPipeline& pipeline, std::uint16_t queue, const RxFrame& frame) {
  for (int attempt = 0; attempt < 1'000'000; ++attempt) {
    std::this_thread::yield();
    if (pipeline.inject_shard(queue, {&frame, 1}) == 1) return true;
  }
  return false;
}

/// Accumulates frames and feeds the pipeline in inject_burst() calls —
/// one SpscRing release-store per queue per burst instead of one per
/// frame. Frames a burst could not queue are retried individually
/// (retry_drops) or counted as drops.
class BurstInjector {
 public:
  BurstInjector(RuruPipeline& pipeline, bool retry_drops, ReplayStats& stats)
      : pipeline_(pipeline),
        retry_drops_(retry_drops),
        stats_(stats),
        burst_(pipeline.config().inject_burst_size > 0 ? pipeline.config().inject_burst_size : 1),
        queued_(new bool[burst_]) {
    frames_.reserve(burst_);
    refs_.reserve(burst_);
  }

  void add(TimedFrame frame) {
    ++stats_.frames;
    stats_.bytes += frame.frame.size();
    frames_.push_back(std::move(frame));
    if (frames_.size() >= burst_) flush();
  }

  void flush() {
    if (frames_.empty()) return;
    refs_.clear();
    for (const TimedFrame& f : frames_) refs_.push_back({f.frame, f.timestamp});
    pipeline_.inject_burst(refs_, queued_.get());
    for (std::size_t i = 0; i < frames_.size(); ++i) {
      if (queued_[i]) continue;
      if (retry_drops_ && retry_inject(pipeline_, frames_[i].frame, frames_[i].timestamp)) {
        continue;
      }
      ++stats_.inject_drops;
    }
    frames_.clear();
  }

 private:
  RuruPipeline& pipeline_;
  bool retry_drops_;
  ReplayStats& stats_;
  std::size_t burst_;
  std::vector<TimedFrame> frames_;  ///< owns the burst's bytes
  std::vector<RxFrame> refs_;
  std::unique_ptr<bool[]> queued_;
};

}  // namespace

ReplayStats replay_scenario(RuruPipeline& pipeline, TrafficModel& model, bool retry_drops) {
  ReplayStats stats;
  const auto start = std::chrono::steady_clock::now();
  BurstInjector injector(pipeline, retry_drops, stats);
  while (auto frame = model.next()) injector.add(std::move(*frame));
  injector.flush();
  stats.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  return stats;
}

ReplayStats replay_scenario_sharded(RuruPipeline& pipeline, TrafficModel& model,
                                    bool retry_drops) {
  // Pregenerate the whole scenario serially (the model is stateful) and
  // meter the wire once, in capture order — producer lanes must never
  // touch the single-writer link meter.
  std::vector<TimedFrame> wire;
  while (auto frame = model.next()) wire.push_back(std::move(*frame));

  ReplayStats stats;
  stats.frames = wire.size();
  std::vector<RxFrame> refs;
  refs.reserve(wire.size());
  for (const TimedFrame& f : wire) {
    refs.push_back({f.frame, f.timestamp});
    stats.bytes += f.frame.size();
  }
  pipeline.meter_frames(refs);

  // Partition with the NIC's own RSS steering function: lane q carries
  // exactly the frames queue q would have received from the whole-port
  // path, so per-queue streams (and thus every worker's view) are
  // bit-identical to single-producer replay.
  const std::uint16_t lanes = pipeline.nic().num_queues();
  std::vector<std::vector<RxFrame>> shard(lanes);
  for (const RxFrame& f : refs) shard[pipeline.queue_for(f.data)].push_back(f);

  const std::size_t burst =
      pipeline.config().inject_burst_size > 0 ? pipeline.config().inject_burst_size : 1;
  std::vector<std::uint64_t> lane_drops(lanes, 0);
  std::vector<std::thread> producers;
  producers.reserve(lanes);
  const auto start = std::chrono::steady_clock::now();
  for (std::uint16_t q = 0; q < lanes; ++q) {
    producers.emplace_back([&pipeline, &shard, &lane_drops, burst, retry_drops, q] {
      const std::vector<RxFrame>& frames = shard[q];
      std::unique_ptr<bool[]> queued(new bool[burst]);
      for (std::size_t off = 0; off < frames.size(); off += burst) {
        const std::size_t n = std::min(burst, frames.size() - off);
        const std::span<const RxFrame> chunk(frames.data() + off, n);
        pipeline.inject_shard(q, chunk, queued.get());
        for (std::size_t i = 0; i < n; ++i) {
          if (queued[i]) continue;
          if (retry_drops && retry_inject_shard(pipeline, q, chunk[i])) continue;
          ++lane_drops[q];
        }
      }
    });
  }
  for (auto& t : producers) t.join();
  stats.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  for (const std::uint64_t d : lane_drops) stats.inject_drops += d;
  return stats;
}

ReplayStats replay_scenario_paced(RuruPipeline& pipeline, TrafficModel& model,
                                  double time_scale) {
  // Paced replay stays per-frame: injection time is dictated by the wall
  // clock, so there is never a burst to amortize.
  ReplayStats stats;
  if (time_scale <= 0) time_scale = 1.0;
  const auto wall_start = std::chrono::steady_clock::now();
  while (auto frame = model.next()) {
    const auto due = wall_start + std::chrono::nanoseconds(static_cast<std::int64_t>(
                                      static_cast<double>(frame->timestamp.ns) / time_scale));
    std::this_thread::sleep_until(due);
    ++stats.frames;
    stats.bytes += frame->frame.size();
    if (!pipeline.inject(frame->frame, frame->timestamp) &&
        !retry_inject(pipeline, frame->frame, frame->timestamp)) {
      ++stats.inject_drops;
    }
  }
  stats.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start).count();
  return stats;
}

Result<ReplayStats> replay_pcap(RuruPipeline& pipeline, const std::string& path,
                                bool retry_drops) {
  auto reader = PcapReader::open(path);
  if (!reader) return make_error(reader.error());
  ReplayStats stats;
  const auto start = std::chrono::steady_clock::now();
  BurstInjector injector(pipeline, retry_drops, stats);
  while (auto record = reader.value().next()) {
    injector.add(TimedFrame{record->timestamp, std::move(record->frame)});
  }
  injector.flush();
  stats.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  return stats;
}

}  // namespace ruru
