#include "core/replay.hpp"

#include <chrono>
#include <memory>
#include <thread>

namespace ruru {

namespace {

/// Bounded yield-retry for one dropped frame (lossless accuracy runs:
/// give the workers time to drain, then count an honest drop).
bool retry_inject(RuruPipeline& pipeline, std::span<const std::uint8_t> frame, Timestamp ts) {
  for (int attempt = 0; attempt < 1'000'000; ++attempt) {
    std::this_thread::yield();
    if (pipeline.inject(frame, ts)) return true;
  }
  return false;  // pipeline wedged; caller counts and moves on
}

/// Accumulates frames and feeds the pipeline in inject_burst() calls —
/// one SpscRing release-store per queue per burst instead of one per
/// frame. Frames a burst could not queue are retried individually
/// (retry_drops) or counted as drops.
class BurstInjector {
 public:
  BurstInjector(RuruPipeline& pipeline, bool retry_drops, ReplayStats& stats)
      : pipeline_(pipeline),
        retry_drops_(retry_drops),
        stats_(stats),
        burst_(pipeline.config().inject_burst_size > 0 ? pipeline.config().inject_burst_size : 1),
        queued_(new bool[burst_]) {
    frames_.reserve(burst_);
    refs_.reserve(burst_);
  }

  void add(TimedFrame frame) {
    ++stats_.frames;
    stats_.bytes += frame.frame.size();
    frames_.push_back(std::move(frame));
    if (frames_.size() >= burst_) flush();
  }

  void flush() {
    if (frames_.empty()) return;
    refs_.clear();
    for (const TimedFrame& f : frames_) refs_.push_back({f.frame, f.timestamp});
    pipeline_.inject_burst(refs_, queued_.get());
    for (std::size_t i = 0; i < frames_.size(); ++i) {
      if (queued_[i]) continue;
      if (retry_drops_ && retry_inject(pipeline_, frames_[i].frame, frames_[i].timestamp)) {
        continue;
      }
      ++stats_.inject_drops;
    }
    frames_.clear();
  }

 private:
  RuruPipeline& pipeline_;
  bool retry_drops_;
  ReplayStats& stats_;
  std::size_t burst_;
  std::vector<TimedFrame> frames_;  ///< owns the burst's bytes
  std::vector<RxFrame> refs_;
  std::unique_ptr<bool[]> queued_;
};

}  // namespace

ReplayStats replay_scenario(RuruPipeline& pipeline, TrafficModel& model, bool retry_drops) {
  ReplayStats stats;
  const auto start = std::chrono::steady_clock::now();
  BurstInjector injector(pipeline, retry_drops, stats);
  while (auto frame = model.next()) injector.add(std::move(*frame));
  injector.flush();
  stats.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  return stats;
}

ReplayStats replay_scenario_paced(RuruPipeline& pipeline, TrafficModel& model,
                                  double time_scale) {
  // Paced replay stays per-frame: injection time is dictated by the wall
  // clock, so there is never a burst to amortize.
  ReplayStats stats;
  if (time_scale <= 0) time_scale = 1.0;
  const auto wall_start = std::chrono::steady_clock::now();
  while (auto frame = model.next()) {
    const auto due = wall_start + std::chrono::nanoseconds(static_cast<std::int64_t>(
                                      static_cast<double>(frame->timestamp.ns) / time_scale));
    std::this_thread::sleep_until(due);
    ++stats.frames;
    stats.bytes += frame->frame.size();
    if (!pipeline.inject(frame->frame, frame->timestamp) &&
        !retry_inject(pipeline, frame->frame, frame->timestamp)) {
      ++stats.inject_drops;
    }
  }
  stats.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start).count();
  return stats;
}

Result<ReplayStats> replay_pcap(RuruPipeline& pipeline, const std::string& path,
                                bool retry_drops) {
  auto reader = PcapReader::open(path);
  if (!reader) return make_error(reader.error());
  ReplayStats stats;
  const auto start = std::chrono::steady_clock::now();
  BurstInjector injector(pipeline, retry_drops, stats);
  while (auto record = reader.value().next()) {
    injector.add(TimedFrame{record->timestamp, std::move(record->frame)});
  }
  injector.flush();
  stats.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  return stats;
}

}  // namespace ruru
