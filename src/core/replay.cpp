#include "core/replay.hpp"

#include <chrono>
#include <thread>

namespace ruru {

namespace {

/// Inject with optional bounded retry (yield to let workers drain).
bool inject_frame(RuruPipeline& pipeline, std::span<const std::uint8_t> frame, Timestamp ts,
                  bool retry_drops, std::uint64_t& drops) {
  if (pipeline.inject(frame, ts)) return true;
  if (!retry_drops) {
    ++drops;
    return false;
  }
  for (int attempt = 0; attempt < 1'000'000; ++attempt) {
    std::this_thread::yield();
    if (pipeline.inject(frame, ts)) return true;
  }
  ++drops;  // pipeline wedged; count and move on
  return false;
}

}  // namespace

ReplayStats replay_scenario(RuruPipeline& pipeline, TrafficModel& model, bool retry_drops) {
  ReplayStats stats;
  const auto start = std::chrono::steady_clock::now();
  while (auto frame = model.next()) {
    ++stats.frames;
    stats.bytes += frame->frame.size();
    inject_frame(pipeline, frame->frame, frame->timestamp, retry_drops, stats.inject_drops);
  }
  stats.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  return stats;
}

ReplayStats replay_scenario_paced(RuruPipeline& pipeline, TrafficModel& model,
                                  double time_scale) {
  ReplayStats stats;
  if (time_scale <= 0) time_scale = 1.0;
  const auto wall_start = std::chrono::steady_clock::now();
  while (auto frame = model.next()) {
    const auto due = wall_start + std::chrono::nanoseconds(static_cast<std::int64_t>(
                                      static_cast<double>(frame->timestamp.ns) / time_scale));
    std::this_thread::sleep_until(due);
    ++stats.frames;
    stats.bytes += frame->frame.size();
    inject_frame(pipeline, frame->frame, frame->timestamp, /*retry_drops=*/true,
                 stats.inject_drops);
  }
  stats.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start).count();
  return stats;
}

Result<ReplayStats> replay_pcap(RuruPipeline& pipeline, const std::string& path,
                                bool retry_drops) {
  auto reader = PcapReader::open(path);
  if (!reader) return make_error(reader.error());
  ReplayStats stats;
  const auto start = std::chrono::steady_clock::now();
  while (auto record = reader.value().next()) {
    ++stats.frames;
    stats.bytes += record->frame.size();
    inject_frame(pipeline, record->frame, record->timestamp, retry_drops, stats.inject_drops);
  }
  stats.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  return stats;
}

}  // namespace ruru
