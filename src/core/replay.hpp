#pragma once
// Feeding a pipeline: scenario replay and pcap replay.
//
// Replay is as-fast-as-possible (the pipeline is the thing under test;
// packet timestamps carry the scenario's virtual time), matching how the
// benches measure sustained throughput.

#include <string>

#include "capture/pcap.hpp"
#include "capture/traffic_model.hpp"
#include "core/pipeline.hpp"

namespace ruru {

struct ReplayStats {
  std::uint64_t frames = 0;
  std::uint64_t bytes = 0;
  std::uint64_t inject_drops = 0;
  double wall_seconds = 0.0;  ///< real time spent injecting

  [[nodiscard]] double frames_per_sec() const {
    return wall_seconds > 0 ? static_cast<double>(frames) / wall_seconds : 0.0;
  }
  [[nodiscard]] double gbits_per_sec() const {
    return wall_seconds > 0 ? static_cast<double>(bytes) * 8.0 / wall_seconds / 1e9 : 0.0;
  }
};

/// Drains `model` into `pipeline` (which must be started).
/// `retry_drops`: when the NIC queue/mempool is momentarily full, retry
/// instead of dropping — keeps accuracy experiments lossless; throughput
/// benches set it false to measure honest drop behaviour.
ReplayStats replay_scenario(RuruPipeline& pipeline, TrafficModel& model,
                            bool retry_drops = true);

/// Replays a pcap file into the pipeline.
Result<ReplayStats> replay_pcap(RuruPipeline& pipeline, const std::string& path,
                                bool retry_drops = true);

/// Sharded replay: pregenerates the scenario, partitions frames with the
/// NIC's own RSS partition function (RuruPipeline::queue_for), then runs
/// one producer thread per RX queue, each injecting only its own shard
/// via inject_shard().  Because the partition function IS the NIC's
/// queue-steering hash, every per-queue stream is bit-identical to what
/// the single-producer path would have enqueued — same workers, same
/// samples — while injection itself scales across producer lanes instead
/// of serialising on one thread.  The link meter is fed once by the
/// coordinator (capture order), not by the lanes.  wall_seconds covers
/// the parallel injection makespan, excluding pregeneration.
ReplayStats replay_scenario_sharded(RuruPipeline& pipeline, TrafficModel& model,
                                    bool retry_drops = true);

/// Paced replay: frames are injected when the wall clock reaches
/// `frame_time / time_scale` (time_scale 1.0 = real time, 10.0 = 10x
/// fast-forward). This is how a live demo runs; throughput benches use
/// the as-fast-as-possible variants above.
ReplayStats replay_scenario_paced(RuruPipeline& pipeline, TrafficModel& model,
                                  double time_scale = 1.0);

}  // namespace ruru
