#pragma once
// RuruPipeline — the whole Figure-2 system, wired.
//
//   inject()  ->  SimNic (symmetric RSS, N queues)
//             ->  per-queue poll workers (handshake tracking, Figure 1)
//             ->  bus (topic "ruru.latency", HWM drop)
//             ->  enrichment pool (geo/AS lookup, IP removal)
//             ->  sinks: TSDB, city/AS aggregators, arc aggregator,
//                 anomaly detectors
//
// Usage: construct, start(), inject frames (one producer thread),
// finish().  After finish() the TSDB, aggregators and alert log hold the
// run's results.  See core/replay.hpp for feeding a TrafficModel or a
// pcap file.

#include <atomic>
#include <memory>
#include <mutex>
#include <vector>

#include "analytics/aggregator.hpp"
#include "analytics/pool.hpp"
#include "anomaly/alert.hpp"
#include "anomaly/conncount_detector.hpp"
#include "anomaly/ewma_detector.hpp"
#include "anomaly/periodic_detector.hpp"
#include "anomaly/synflood_detector.hpp"
#include "capture/traffic_model.hpp"
#include "driver/eal.hpp"
#include "driver/nic.hpp"
#include "flow/link_meter.hpp"
#include "flow/worker.hpp"
#include "geo/as_db.hpp"
#include "geo/geo_db.hpp"
#include "msg/pubsub.hpp"
#include "obs/exporters.hpp"
#include "obs/metrics.hpp"
#include "obs/snapshot_timer.hpp"
#include "obs/trace.hpp"
#include "obs/watchdog.hpp"
#include "tsdb/query.hpp"
#include "viz/arc_aggregator.hpp"

namespace ruru {

struct PipelineConfig {
  // --- capture / DPDK stage ---
  std::uint16_t num_queues = 4;
  std::size_t queue_depth = 8192;
  std::size_t mempool_size = 1 << 16;
  std::size_t mbuf_size = 2048;
  RssKey rss_key = symmetric_rss_key();
  /// Frames the replayer accumulates before one inject_burst() call
  /// (one SpscRing release-store per queue per burst). 1 = per-frame
  /// injection, the pre-burst behaviour.
  std::size_t inject_burst_size = 32;

  // --- flow tracking ---
  std::size_t flow_table_capacity = 1 << 16;  ///< per queue
  Duration flow_stale_after = Duration::from_sec(30.0);
  /// Slots probed per flow-table lookup (a power of two ≥ 16, i.e. whole
  /// 16-slot probe groups). Larger windows tolerate heavier hash
  /// collisions at the cost of longer worst-case probes.
  std::size_t flow_probe_window = 32;
  /// Worker pre-parse fast path: skip full parsing of data segments on
  /// untracked flows (see QueueWorker::set_fast_path).
  bool worker_fast_path = true;
  /// Continuous in-flow RTT: match TCP-timestamp echoes on established
  /// flows in the worker fast path (pping's algorithm against per-flow
  /// rings in the flow table).  Off = handshake-only tracking, wire
  /// output bit-identical to the pre-feature pipeline.
  bool inflow_rtt = false;
  /// Per-flow, per-direction timestamp ring entries (power of two,
  /// 2..64).  Sizes the flow table's cold ring arrays when inflow_rtt
  /// is on.
  std::size_t ts_ring_entries = 8;
  /// Per-flow-direction emission floor: at most one in-flow sample per
  /// this many microseconds ("first match per RTT window").  0 emits
  /// every match.
  std::uint64_t inflow_min_interval_us = 10'000;
  /// Rx-loop mbuf prefetch lookahead in the worker poll loop (0 disables,
  /// max 4).  A memory-timing knob only — never changes semantics.
  std::size_t worker_prefetch_depth = 1;
  /// Worker poll-loop kernel: true (default) = the staged vector lane
  /// pipeline, false = the retired per-packet loop kept as the oracle.
  /// Samples and stats are bit-identical either way.
  bool worker_vector_loop = true;

  // --- multi-core topology ---
  /// CPU pins for the pipeline's threads (best-effort Linux affinity;
  /// see LcoreLauncher). Empty = every thread runs unpinned. Otherwise
  /// the list must carry either `num_queues` entries (one per worker
  /// lcore, in queue order) or `num_queues + enrichment_threads`
  /// entries (workers first, then enrichment threads) — any other
  /// length is a topology error the constructor rejects.  kNoCpuPin
  /// (-1) leaves an individual slot unpinned.
  std::vector<int> pin_cpus;

  // --- bus / analytics ---
  std::size_t bus_hwm = 1 << 16;
  std::size_t enrichment_threads = 2;
  /// Samples packed per bus message. Workers accumulate completions and
  /// publish one batched frame (amortized zero-allocation publish path);
  /// 1 reproduces the one-message-per-sample behaviour. Clamped to
  /// [1, kMaxLatencyBatch].
  std::size_t bus_batch_size = 32;
  /// Max capture-time age of a buffered sample before a partial batch is
  /// flushed (0 = flush only on batch-full or an empty poll), so
  /// low-rate traffic is not delayed behind the batch size.
  Duration bus_batch_linger = Duration::from_ms(5);
  /// Sharded enrichment inbox: each pool worker owns its slice of the
  /// bus fan-in lanes (SPSC pops, per-flow ordering) instead of all
  /// workers scanning every lane. See EnrichmentPool::set_shard_inbox.
  bool enrich_shard_inbox = true;

  // --- anomaly modules ---
  bool enable_synflood = true;
  SynFloodConfig synflood;
  bool enable_conncount = true;
  ConnCountConfig conncount;
  bool enable_ewma = true;
  EwmaConfig ewma;
  bool enable_periodic = false;  ///< for glitch-hunting runs
  PeriodicConfig periodic;

  // --- storage ---
  bool tsdb_store_samples = true;  ///< write per-sample points to the TSDB
  /// TSDB engine series shards (rounded to a power of two; ingest locks
  /// only the owning shard, so writers and queries don't serialize).
  std::size_t tsdb_shards = 8;
  /// Points per compressed chunk before it seals into an immutable,
  /// lock-free-readable block.
  std::uint32_t tsdb_chunk_points = 512;
  /// Long-term storage policy, applied at finish() (the InfluxDB
  /// continuous-query + retention pattern): when `downsample_window` is
  /// nonzero, every latency measurement is downsampled into
  /// "<name>_<stat>" series at that granularity; when
  /// `retention_horizon` is nonzero, raw points older than the horizon
  /// (relative to the newest sample) are then dropped.
  Duration downsample_window = Duration{0};
  std::string downsample_stat = "median";
  Duration retention_horizon = Duration{0};

  // --- link load metering ---
  bool enable_link_meter = true;
  Duration link_meter_window = Duration::from_sec(1.0);

  // --- observability / telemetry ---
  /// Stage counters and gauges are ALWAYS registered (callback metrics,
  /// zero data-path cost — the summary is a view over them).  This flag
  /// additionally attaches the hot-path latency histograms (poll batch
  /// sizes, bus queue wait, enrich latency, sampled end-to-end transit,
  /// TSDB write latency) and runs the periodic snapshot/export thread.
  bool metrics_enabled = false;
  /// Snapshot cadence of the exporter thread.
  Duration metrics_interval = Duration::from_sec(1.0);
  /// Record 1-in-N bus messages into the end-to-end transit histogram.
  std::uint32_t transit_sample_every = 16;
  /// Write "ruru.self.*" series into the pipeline's own TSDB each tick.
  bool metrics_self_ingest = true;
  /// When non-empty: rewrite this file with Prometheus text each tick.
  std::string metrics_prometheus_path;
  /// When non-empty: append one JSON line per tick to this file.
  std::string metrics_json_path;

  // --- flight-recorder tracing / watchdog ---
  /// 1-in-N packet-lifecycle sampling: flows whose RSS hash selects get
  /// a trace id at the NIC and their spans recorded at every stage
  /// (nic → worker → flow → bus → enrich → tsdb).  0 = tracing off; the
  /// hot path then carries no trace work at all (and with
  /// -DRURU_TRACE=0 the hooks are not even compiled).
  std::uint32_t trace_sample_n = 0;
  /// Events kept per stage ring (rounded up to a power of two).
  std::size_t trace_ring_capacity = 4096;
  /// When non-empty: finish() exports the flight record here as Chrome
  /// trace_event JSON (loadable in chrome://tracing / ui.perfetto.dev).
  std::string trace_json_path;
  /// Stall watchdog over the per-stage heartbeats (worker polls,
  /// enrichment drain, snapshot ticks, TSDB flushes).  On a stalled
  /// stage — or SIGUSR1 — it dumps the last trace events per ring and
  /// self-ingests a ruru.health.* metric.
  bool watchdog_enabled = false;
  Duration watchdog_interval = Duration::from_sec(1.0);
  Duration watchdog_stall_after = Duration::from_sec(5.0);
};

struct PipelineSummary;

class RuruPipeline {
 public:
  /// `geo6` optional: IPv6 location table (not owned; must outlive the
  /// pipeline). Without it, v6 endpoints show as unlocated.
  RuruPipeline(PipelineConfig config, const GeoDatabase& geo, const AsDatabase& as,
               const Geo6Database* geo6 = nullptr);
  ~RuruPipeline();

  RuruPipeline(const RuruPipeline&) = delete;
  RuruPipeline& operator=(const RuruPipeline&) = delete;

  /// Register an extra consumer of enriched (anonymized) samples — the
  /// "additional functionality" extension point of §2 (e.g. a
  /// FilterChain, a custom exporter). Must be called before start();
  /// invoked from enrichment worker threads, so the sink must be
  /// thread-safe.
  void add_enriched_sink(std::function<void(const EnrichedSample&)> sink) {
    enrichment_->add_sink(std::move(sink));
  }

  /// Launch worker lcores and the enrichment pool.
  void start();

  /// RX one frame (single producer thread). Returns false on drop.
  bool inject(std::span<const std::uint8_t> frame, Timestamp rx_time);

  /// RX a burst of frames (single producer thread); see
  /// SimNic::inject_burst for the staging / one-release-store-per-queue
  /// contract. Returns frames queued; `queued` (optional, frames.size()
  /// slots) receives per-frame success.
  std::size_t inject_burst(std::span<const RxFrame> frames, bool* queued = nullptr);

  /// Sharded RX: queue `queue`'s own producer lane injects a burst of
  /// frames pre-partitioned by queue_for() (see SimNic::inject_shard for
  /// the one-producer-per-lane contract).  Does NOT feed the link meter
  /// — the meter is single-writer and must see the wire in capture
  /// order, so a sharded replay coordinator meters once via
  /// meter_frames() before partitioning.
  std::size_t inject_shard(std::uint16_t queue, std::span<const RxFrame> frames,
                           bool* queued = nullptr);

  /// Feed the link meter without injecting (single caller thread, frames
  /// in capture order): the sharded replay coordinator's wire view.
  void meter_frames(std::span<const RxFrame> frames);

  /// The NIC's RSS partition function — which queue (and so which
  /// producer lane) `frame` belongs to.
  [[nodiscard]] std::uint16_t queue_for(std::span<const std::uint8_t> frame) const {
    return nic_->queue_for(frame);
  }

  /// Drain everything and stop all threads. Idempotent. After this the
  /// result accessors below are stable.
  void finish();

  /// Subscribe to pipeline topics on the internal bus. Useful topics:
  /// kLatencyTopic ("ruru.latency", binary samples) and kAlertTopic
  /// ("ruru.alerts", JSON alerts). Subscribe before start() to see
  /// everything.
  [[nodiscard]] std::shared_ptr<Subscription> subscribe(std::string topic_prefix,
                                                        std::size_t hwm = 0) {
    return bus_.subscribe(std::move(topic_prefix), hwm);
  }

  // --- results (stable after finish(); live-but-racy before) ---
  [[nodiscard]] TsdbEngine& tsdb() { return tsdb_; }
  [[nodiscard]] LatencyAggregator& city_pairs() { return city_pairs_; }
  [[nodiscard]] LatencyAggregator& as_pairs() { return as_pairs_; }
  [[nodiscard]] ArcAggregator& arcs() { return arcs_; }
  [[nodiscard]] AlertLog& alerts() { return alerts_; }
  [[nodiscard]] const PeriodicSpikeDetector* periodic_detector() const {
    return periodic_ ? periodic_.get() : nullptr;
  }

  [[nodiscard]] const SimNic& nic() const { return *nic_; }
  /// Worker lcore launcher (pin success/failure counters live here).
  [[nodiscard]] const LcoreLauncher& lcores() const { return lcores_; }
  [[nodiscard]] const EnrichmentPool& enrichment() const { return *enrichment_; }
  [[nodiscard]] const LinkMeter& link_meter() const { return link_meter_; }
  [[nodiscard]] const PipelineConfig& config() const { return config_; }
  [[nodiscard]] PipelineSummary summary() const;

  /// The live registry: every stage counter/gauge (always) plus latency
  /// histograms (when config.metrics_enabled). Snapshot any time.
  [[nodiscard]] const obs::MetricsRegistry& metrics() const { return metrics_; }
  [[nodiscard]] obs::MetricsRegistry& metrics() { return metrics_; }

  /// Attach an extra exporter to the snapshot thread. Call before
  /// start(); no-op unless config.metrics_enabled.
  void add_metrics_exporter(std::shared_ptr<obs::MetricsExporter> exporter) {
    if (snapshot_timer_) snapshot_timer_->add_exporter(std::move(exporter));
  }

  /// The flight recorder (rings + exporter).  Snapshot/export any time;
  /// inert when config.trace_sample_n == 0.
  [[nodiscard]] const obs::Tracer& tracer() const { return tracer_; }
  /// The stall watchdog; null unless config.watchdog_enabled.
  [[nodiscard]] obs::Watchdog* watchdog() { return watchdog_.get(); }

 private:
  void wire_sinks();
  void register_metrics();

  PipelineConfig config_;
  const GeoDatabase& geo_;
  const AsDatabase& as_;

  /// Declared before the stages: workers/enrichers hold TraceHandles
  /// pointing into the tracer's rings, so it must outlive them.
  obs::Tracer tracer_;

  Mempool pool_;
  std::unique_ptr<SimNic> nic_;
  LinkMeter link_meter_;
  std::vector<std::unique_ptr<QueueWorker>> workers_;
  LcoreLauncher lcores_;

  PubSocket bus_;
  std::unique_ptr<EnrichmentPool> enrichment_;
  std::shared_ptr<Subscription> enrichment_sub_;

  TsdbEngine tsdb_;
  LatencyAggregator city_pairs_{LatencyAggregator::Mode::kCityPair};
  LatencyAggregator as_pairs_{LatencyAggregator::Mode::kAsPair};
  ArcAggregator arcs_;
  AlertLog alerts_;

  std::unique_ptr<SynFloodDetector> synflood_;
  std::unique_ptr<ConnCountDetector> conncount_;
  std::unique_ptr<EwmaDetector> ewma_;
  std::mutex ewma_mu_;
  std::unique_ptr<PeriodicSpikeDetector> periodic_;
  std::mutex periodic_mu_;

  std::atomic<std::uint64_t> alerts_published_{0};
  bool started_ = false;
  bool finished_ = false;

  // Last members: the timer/watchdog threads read metrics_/tsdb_/the
  // stage counters and must be destroyed (joined) before anything they
  // observe.
  obs::MetricsRegistry metrics_;
  obs::HistogramHandle tsdb_write_hist_;  ///< shared shard (record_shared)
  obs::TraceHandle sink_trace_;  ///< tsdb-sink spans (shared ring: N enrichers)
  std::unique_ptr<obs::SnapshotTimer> snapshot_timer_;
  std::unique_ptr<obs::Watchdog> watchdog_;
};

/// Aggregated end-of-run statistics across every stage.
struct PipelineSummary {
  NicStats nic;
  std::uint64_t mempool_alloc_failures = 0;
  WorkerStats workers;           ///< summed
  TrackerStats tracker;          ///< summed
  std::uint64_t bus_published = 0;        ///< latency *samples* only (batches weighted)
  std::uint64_t bus_alerts_published = 0; ///< "ruru.alerts" messages
  std::uint64_t bus_dropped = 0;          ///< samples lost to the HWM (whole batches)
  std::uint64_t enriched = 0;             ///< samples enriched
  std::uint64_t decode_failures = 0;
  std::uint64_t unlocated = 0;
  std::uint64_t tsdb_points = 0;
  std::size_t alerts = 0;

  [[nodiscard]] std::string to_string() const;
};

}  // namespace ruru
