#pragma once
// Deployment configuration files.
//
// A deployed tap is driven by ops, not by recompiling: this parses a
// simple `key = value` format (with `#` comments and [section] headers
// flattened into dotted keys) into PipelineConfig.  Unknown keys are
// errors — typos in monitoring configs must not silently no-op.
//
// Example:
//   [capture]
//   queues = 8
//   mempool = 131072
//   [analytics]
//   threads = 4
//   [detectors]
//   synflood = true
//   synflood_min_syns = 500

#include <map>
#include <string>

#include "core/pipeline.hpp"
#include "util/result.hpp"

namespace ruru {

/// Parses the key=value text into a flat map ("section.key" -> value).
[[nodiscard]] Result<std::map<std::string, std::string>> parse_config_text(
    const std::string& text);

/// Parses text and applies it over `defaults`. Unknown keys or
/// malformed values produce an error naming the offender.
[[nodiscard]] Result<PipelineConfig> pipeline_config_from_text(const std::string& text,
                                                               PipelineConfig defaults = {});

/// Reads `path` and calls pipeline_config_from_text.
[[nodiscard]] Result<PipelineConfig> pipeline_config_from_file(const std::string& path,
                                                               PipelineConfig defaults = {});

}  // namespace ruru
