#pragma once
// Umbrella header: everything a downstream application needs.
//
//   #include "core/ruru.hpp"
//
//   ruru::World world = ...;            // geo + AS databases
//   ruru::RuruPipeline pipeline(cfg, world.geo, world.as);
//   pipeline.start();
//   ... inject frames / replay a scenario or pcap ...
//   pipeline.finish();
//
// See README.md for the architecture overview and examples/ for
// runnable programs covering every subsystem.

#include "analytics/filter.hpp"        // measurement filtering (§2 extension)
#include "anomaly/alert_codec.hpp"     // "ruru.alerts" JSON feed
#include "anomaly/heavy_hitters.hpp"   // top-talker sketch
#include "capture/pcap.hpp"            // capture files
#include "capture/scenarios.hpp"       // canned trans-Pacific workloads
#include "core/config_file.hpp"        // operator configuration
#include "core/pipeline.hpp"           // the system
#include "core/replay.hpp"             // feeding it
#include "geo/world.hpp"               // geo/AS database construction
#include "viz/dashboard.hpp"           // Grafana-role text panels
#include "viz/heatmap.hpp"             // latency heatmap panel
#include "viz/ws_server.hpp"           // WebSocket push server
