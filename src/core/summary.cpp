#include <iomanip>
#include <sstream>

#include "core/pipeline.hpp"

namespace ruru {

std::string PipelineSummary::to_string() const {
  std::ostringstream out;
  out << "rx=" << nic.rx_packets << " pkts (" << std::fixed << std::setprecision(1)
      << static_cast<double>(nic.rx_bytes) / 1e6 << " MB)"
      << ", drops[no_mbuf=" << nic.dropped_no_mbuf << " qfull=" << nic.dropped_queue_full
      << "], tcp=" << workers.parse_status[0] << ", fast_skip=" << workers.fast_path_skips
      << ", syn=" << tracker.syn_seen << " (retx=" << tracker.syn_retransmissions
      << "), samples=" << tracker.samples_emitted << ", bus[pub=" << bus_published
      << " drop=" << bus_dropped << "], enriched=" << enriched
      << ", tsdb_points=" << tsdb_points << ", alerts=" << alerts;
  return out.str();
}

}  // namespace ruru
