#include <cinttypes>
#include <cstdio>

#include "core/pipeline.hpp"

namespace ruru {

std::string PipelineSummary::to_string() const {
  char buf[512];
  std::snprintf(buf, sizeof buf,
                "rx=%" PRIu64 " pkts (%.1f MB), drops[no_mbuf=%" PRIu64 " qfull=%" PRIu64
                "], tcp=%" PRIu64 ", fast_skip=%" PRIu64 ", syn=%" PRIu64 " (retx=%" PRIu64
                "), samples=%" PRIu64 ", bus[pub=%" PRIu64 " drop=%" PRIu64 "], enriched=%" PRIu64
                ", tsdb_points=%" PRIu64 ", alerts=%zu",
                nic.rx_packets, static_cast<double>(nic.rx_bytes) / 1e6, nic.dropped_no_mbuf,
                nic.dropped_queue_full, workers.parse_status[0], workers.fast_path_skips,
                tracker.syn_seen, tracker.syn_retransmissions, tracker.samples_emitted,
                bus_published, bus_dropped, enriched, tsdb_points, alerts);
  return buf;
}

}  // namespace ruru
