#include "core/config_file.hpp"

#include <cstdio>
#include <memory>

namespace ruru {

namespace {

std::string trim(std::string s) {
  const auto first = s.find_first_not_of(" \t\r");
  const auto last = s.find_last_not_of(" \t\r");
  if (first == std::string::npos) return {};
  return s.substr(first, last - first + 1);
}

Result<std::uint64_t> parse_u64(const std::string& key, const std::string& value) {
  if (value.empty()) return make_error("config: empty value for '" + key + "'");
  std::uint64_t out = 0;
  for (const char c : value) {
    if (c < '0' || c > '9') {
      return make_error("config: '" + key + "' expects an unsigned integer, got '" + value + "'");
    }
    out = out * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return out;
}

Result<double> parse_f64(const std::string& key, const std::string& value) {
  char* end = nullptr;
  const double v = std::strtod(value.c_str(), &end);
  if (end == value.c_str() || *end != '\0') {
    return make_error("config: '" + key + "' expects a number, got '" + value + "'");
  }
  return v;
}

Result<bool> parse_bool(const std::string& key, const std::string& value) {
  if (value == "true" || value == "1" || value == "yes" || value == "on") return true;
  if (value == "false" || value == "0" || value == "no" || value == "off") return false;
  return make_error("config: '" + key + "' expects a boolean, got '" + value + "'");
}

/// Comma-separated CPU list, e.g. "0,1,2,3" or "0,1,-1,3" (-1 = leave
/// that slot unpinned).
Result<std::vector<int>> parse_cpu_list(const std::string& key, const std::string& value) {
  std::vector<int> out;
  std::size_t pos = 0;
  while (pos <= value.size()) {
    const std::size_t comma = value.find(',', pos);
    const std::string item =
        trim(value.substr(pos, comma == std::string::npos ? comma : comma - pos));
    pos = comma == std::string::npos ? value.size() + 1 : comma + 1;
    if (item.empty()) {
      return make_error("config: '" + key + "' has an empty entry in '" + value + "'");
    }
    if (item == "-1") {
      out.push_back(-1);
      continue;
    }
    auto v = parse_u64(key, item);
    if (!v) return make_error(v.error());
    if (v.value() > 1'000'000) {
      return make_error("config: '" + key + "' CPU id out of range: '" + item + "'");
    }
    out.push_back(static_cast<int>(v.value()));
  }
  return out;
}

}  // namespace

Result<std::map<std::string, std::string>> parse_config_text(const std::string& text) {
  std::map<std::string, std::string> out;
  std::string section;
  std::size_t pos = 0;
  int line_no = 0;
  while (pos <= text.size()) {
    const std::size_t nl = text.find('\n', pos);
    std::string line = trim(text.substr(pos, nl == std::string::npos ? nl : nl - pos));
    pos = nl == std::string::npos ? text.size() + 1 : nl + 1;
    ++line_no;

    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line = trim(line.substr(0, hash));
    if (line.empty()) continue;

    if (line.front() == '[') {
      if (line.back() != ']') {
        return make_error("config: unterminated section header at line " +
                          std::to_string(line_no));
      }
      section = trim(line.substr(1, line.size() - 2));
      if (section.empty()) {
        return make_error("config: empty section name at line " + std::to_string(line_no));
      }
      continue;
    }

    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) {
      return make_error("config: expected 'key = value' at line " + std::to_string(line_no) +
                        ": '" + line + "'");
    }
    const std::string key = trim(line.substr(0, eq));
    const std::string value = trim(line.substr(eq + 1));
    if (key.empty()) {
      return make_error("config: empty key at line " + std::to_string(line_no));
    }
    const std::string full_key = section.empty() ? key : section + "." + key;
    if (out.count(full_key) != 0) {
      return make_error("config: duplicate key '" + full_key + "' at line " +
                        std::to_string(line_no));
    }
    out[full_key] = value;
  }
  return out;
}

Result<PipelineConfig> pipeline_config_from_text(const std::string& text,
                                                 PipelineConfig defaults) {
  auto parsed = parse_config_text(text);
  if (!parsed) return make_error(parsed.error());

  PipelineConfig cfg = defaults;
  for (const auto& [key, value] : parsed.value()) {
    auto set_u64 = [&](auto& field) -> Status {
      auto v = parse_u64(key, value);
      if (!v) return make_error(v.error());
      field = static_cast<std::remove_reference_t<decltype(field)>>(v.value());
      return {};
    };
    auto set_bool = [&](bool& field) -> Status {
      auto v = parse_bool(key, value);
      if (!v) return make_error(v.error());
      field = v.value();
      return {};
    };
    auto set_seconds = [&](Duration& field) -> Status {
      auto v = parse_f64(key, value);
      if (!v) return make_error(v.error());
      field = Duration::from_sec(v.value());
      return {};
    };

    Status status;
    if (key == "capture.queues") {
      status = set_u64(cfg.num_queues);
    } else if (key == "capture.queue_depth") {
      status = set_u64(cfg.queue_depth);
    } else if (key == "capture.mempool") {
      status = set_u64(cfg.mempool_size);
    } else if (key == "capture.mbuf_size") {
      status = set_u64(cfg.mbuf_size);
    } else if (key == "capture.symmetric_rss") {
      bool symmetric = true;
      status = set_bool(symmetric);
      if (status.ok()) cfg.rss_key = symmetric ? symmetric_rss_key() : default_rss_key();
    } else if (key == "capture.inject_burst") {
      status = set_u64(cfg.inject_burst_size);
    } else if (key == "flow.fast_path") {
      status = set_bool(cfg.worker_fast_path);
    } else if (key == "flow.table_capacity") {
      status = set_u64(cfg.flow_table_capacity);
    } else if (key == "flow.stale_after_s") {
      status = set_seconds(cfg.flow_stale_after);
    } else if (key == "flow.probe_window") {
      status = set_u64(cfg.flow_probe_window);
    } else if (key == "flow.inflow_rtt") {
      status = set_bool(cfg.inflow_rtt);
    } else if (key == "flow.ts_ring_entries") {
      status = set_u64(cfg.ts_ring_entries);
    } else if (key == "flow.inflow_min_interval_us") {
      status = set_u64(cfg.inflow_min_interval_us);
    } else if (key == "flow.prefetch_depth") {
      status = set_u64(cfg.worker_prefetch_depth);
    } else if (key == "flow.vector_loop") {
      status = set_bool(cfg.worker_vector_loop);
    } else if (key == "bus.hwm") {
      status = set_u64(cfg.bus_hwm);
    } else if (key == "bus.batch") {
      status = set_u64(cfg.bus_batch_size);
    } else if (key == "bus.batch_linger_s") {
      status = set_seconds(cfg.bus_batch_linger);
    } else if (key == "analytics.threads") {
      status = set_u64(cfg.enrichment_threads);
    } else if (key == "analytics.shard_inbox") {
      status = set_bool(cfg.enrich_shard_inbox);
    } else if (key == "topology.workers") {
      // Worker lcores and RX queues are 1:1 (one table per queue), so
      // the topology's worker count IS the queue count.
      status = set_u64(cfg.num_queues);
    } else if (key == "topology.enrichers") {
      status = set_u64(cfg.enrichment_threads);
    } else if (key == "topology.pin_cpus") {
      auto v = parse_cpu_list(key, value);
      if (!v) {
        status = make_error(v.error());
      } else {
        cfg.pin_cpus = std::move(v.value());
      }
    } else if (key == "storage.per_sample") {
      status = set_bool(cfg.tsdb_store_samples);
    } else if (key == "storage.downsample_window_s") {
      status = set_seconds(cfg.downsample_window);
    } else if (key == "storage.downsample_stat") {
      if (value == "mean" || value == "median" || value == "min" || value == "max" ||
          value == "p99" || value == "count") {
        cfg.downsample_stat = value;
      } else {
        status = make_error("config: unknown downsample stat '" + value + "'");
      }
    } else if (key == "storage.retention_s") {
      status = set_seconds(cfg.retention_horizon);
    } else if (key == "storage.tsdb_shards") {
      status = set_u64(cfg.tsdb_shards);
    } else if (key == "storage.tsdb_chunk_points") {
      status = set_u64(cfg.tsdb_chunk_points);
    } else if (key == "meter.enabled") {
      status = set_bool(cfg.enable_link_meter);
    } else if (key == "meter.window_s") {
      status = set_seconds(cfg.link_meter_window);
    } else if (key == "detectors.synflood") {
      status = set_bool(cfg.enable_synflood);
    } else if (key == "detectors.synflood_min_syns") {
      status = set_u64(cfg.synflood.min_syns);
    } else if (key == "detectors.synflood_window_s") {
      status = set_seconds(cfg.synflood.window);
    } else if (key == "detectors.conncount") {
      status = set_bool(cfg.enable_conncount);
    } else if (key == "detectors.ewma") {
      status = set_bool(cfg.enable_ewma);
    } else if (key == "detectors.ewma_k_sigma") {
      auto v = parse_f64(key, value);
      if (!v) {
        status = make_error(v.error());
      } else {
        cfg.ewma.k_sigma = v.value();
      }
    } else if (key == "detectors.periodic") {
      status = set_bool(cfg.enable_periodic);
    } else if (key == "detectors.periodic_period_s") {
      status = set_seconds(cfg.periodic.period);
    } else if (key == "detectors.periodic_bucket_s") {
      status = set_seconds(cfg.periodic.bucket);
    } else if (key == "obs.enabled") {
      status = set_bool(cfg.metrics_enabled);
    } else if (key == "obs.interval_s") {
      status = set_seconds(cfg.metrics_interval);
    } else if (key == "obs.transit_sample_every") {
      status = set_u64(cfg.transit_sample_every);
    } else if (key == "obs.self_ingest") {
      status = set_bool(cfg.metrics_self_ingest);
    } else if (key == "obs.prometheus_path") {
      cfg.metrics_prometheus_path = value;
    } else if (key == "obs.json_path") {
      cfg.metrics_json_path = value;
    } else if (key == "obs.trace_sample_n") {
      status = set_u64(cfg.trace_sample_n);
    } else if (key == "obs.trace_ring") {
      status = set_u64(cfg.trace_ring_capacity);
    } else if (key == "obs.trace_json_path") {
      cfg.trace_json_path = value;
    } else if (key == "obs.watchdog") {
      status = set_bool(cfg.watchdog_enabled);
    } else if (key == "obs.watchdog_interval_s") {
      status = set_seconds(cfg.watchdog_interval);
    } else if (key == "obs.watchdog_stall_s") {
      status = set_seconds(cfg.watchdog_stall_after);
    } else {
      return make_error("config: unknown key '" + key + "'");
    }
    if (!status.ok()) return make_error(status.error());
  }

  if (cfg.num_queues == 0) return make_error("config: capture.queues must be >= 1");
  {
    const std::size_t w = cfg.flow_probe_window;
    if (w < 16 || (w & (w - 1)) != 0) {
      return make_error(
          "config: flow.probe_window must be a power of two >= 16 "
          "(whole 16-slot probe groups), got " +
          std::to_string(w));
    }
    // The table rounds its capacity up to a power of two (minimum one
    // group); a window beyond that would probe the same groups twice.
    std::size_t rounded_capacity = 16;
    while (rounded_capacity < cfg.flow_table_capacity) rounded_capacity <<= 1;
    if (w > rounded_capacity) {
      return make_error("config: flow.probe_window (" + std::to_string(w) +
                        ") exceeds flow.table_capacity (" +
                        std::to_string(cfg.flow_table_capacity) + ", rounded to " +
                        std::to_string(rounded_capacity) + ")");
    }
  }
  {
    // The per-flow timestamp ring is indexed with a power-of-two mask;
    // its storage is cap * 2 * entries, so keep entries small.
    const std::size_t e = cfg.ts_ring_entries;
    if (e < 2 || e > 64 || (e & (e - 1)) != 0) {
      return make_error(
          "config: flow.ts_ring_entries must be a power of two in [2, 64], got " +
          std::to_string(e));
    }
  }
  if (cfg.inflow_min_interval_us > 60'000'000) {
    return make_error("config: flow.inflow_min_interval_us must be <= 60000000 (one minute), got " +
                      std::to_string(cfg.inflow_min_interval_us));
  }
  if (cfg.worker_prefetch_depth > 4) {
    return make_error("config: flow.prefetch_depth must be in [0, 4], got " +
                      std::to_string(cfg.worker_prefetch_depth));
  }
  if (cfg.inject_burst_size == 0) return make_error("config: capture.inject_burst must be >= 1");
  if (cfg.enrichment_threads == 0) return make_error("config: analytics.threads must be >= 1");
  if (!cfg.pin_cpus.empty() && cfg.pin_cpus.size() != cfg.num_queues &&
      cfg.pin_cpus.size() != cfg.num_queues + cfg.enrichment_threads) {
    return make_error("config: topology.pin_cpus must list one CPU per worker (" +
                      std::to_string(cfg.num_queues) + ") or per worker + enricher (" +
                      std::to_string(cfg.num_queues + cfg.enrichment_threads) + "), got " +
                      std::to_string(cfg.pin_cpus.size()));
  }
  if (cfg.bus_batch_size == 0) return make_error("config: bus.batch must be >= 1");
  if (cfg.tsdb_shards == 0 || cfg.tsdb_shards > 256) {
    return make_error("config: storage.tsdb_shards must be in [1, 256]");
  }
  if (cfg.tsdb_chunk_points == 0) {
    return make_error("config: storage.tsdb_chunk_points must be >= 1");
  }
  if (cfg.metrics_enabled && cfg.metrics_interval.ns <= 0) {
    return make_error("config: obs.interval_s must be > 0");
  }
  if (cfg.trace_sample_n != 0 && cfg.trace_ring_capacity == 0) {
    return make_error("config: obs.trace_ring must be >= 1 when tracing is enabled");
  }
  if (cfg.watchdog_enabled) {
    if (cfg.watchdog_interval.ns <= 0) {
      return make_error("config: obs.watchdog_interval_s must be > 0");
    }
    if (cfg.watchdog_stall_after.ns <= 0) {
      return make_error("config: obs.watchdog_stall_s must be > 0");
    }
  }
  return cfg;
}

Result<PipelineConfig> pipeline_config_from_file(const std::string& path,
                                                 PipelineConfig defaults) {
  std::unique_ptr<std::FILE, int (*)(std::FILE*)> f(std::fopen(path.c_str(), "rb"),
                                                    &std::fclose);
  if (!f) return make_error("config: cannot open '" + path + "'");
  std::string text;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f.get())) > 0) text.append(buf, n);
  return pipeline_config_from_text(text, defaults);
}

}  // namespace ruru
