#pragma once
// SnapshotTimer — the telemetry heartbeat.
//
// A single background thread that every `interval` takes a merged
// registry snapshot, computes deltas/rates against the previous one and
// fans the pair out to every exporter.  The data path never sees it:
// snapshotting reads relaxed atomics (and polls callback metrics that
// read StatCells or take their target's own short lock).
//
// stop() takes one final snapshot and flushes every exporter, so short
// runs (tests, replays shorter than the interval) — and even timers that
// were never started — still export at least once.

#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/exporters.hpp"
#include "obs/metrics.hpp"

namespace ruru::obs {

class SnapshotTimer {
 public:
  /// `registry` must outlive the timer.  `clock` optional (defaults to
  /// a steady SystemClock); tests pass a SimClock and drive tick().
  SnapshotTimer(MetricsRegistry& registry, Duration interval, const Clock* clock = nullptr);
  ~SnapshotTimer();

  SnapshotTimer(const SnapshotTimer&) = delete;
  SnapshotTimer& operator=(const SnapshotTimer&) = delete;

  /// Register before start(); exporters run on the snapshot thread.
  void add_exporter(std::shared_ptr<MetricsExporter> exporter);

  void start();
  /// Joins the thread (if running), takes one final tick and flushes
  /// every exporter.  The final drain happens exactly once per
  /// start/stop cycle — including for timers that were never started,
  /// so configured-but-unstarted pipelines still emit their snapshot.
  /// Idempotent.
  void stop();

  /// One snapshot + export now (also what the thread calls).  Safe to
  /// call concurrently with the timer thread.
  void tick();

  [[nodiscard]] std::uint64_t ticks() const;
  /// Copy of the most recent snapshot (empty before the first tick).
  [[nodiscard]] MetricsSnapshot last_snapshot() const;

 private:
  void thread_main();

  MetricsRegistry& registry_;
  Duration interval_;
  SystemClock default_clock_;
  const Clock* clock_;
  std::vector<std::shared_ptr<MetricsExporter>> exporters_;

  mutable std::mutex tick_mu_;  ///< serializes tick() vs stop()'s final tick
  MetricsSnapshot prev_;
  bool have_prev_ = false;
  std::uint64_t tick_count_ = 0;

  std::mutex wake_mu_;
  std::condition_variable wake_cv_;
  bool stopping_ = false;
  bool started_ = false;
  bool final_done_ = false;  ///< final tick + flush taken for this cycle
  std::thread thread_;
};

}  // namespace ruru::obs
