#pragma once
// Stall watchdog over the flight-recorder rings.
//
// Each pipeline stage already exposes a monotonically increasing
// progress counter (worker polls, enrichment batches, snapshot ticks,
// TSDB points).  The watchdog samples those counters on a background
// thread; a stage whose counter has not moved for `stall_after` while
// it demonstrably has work pending (its backlog gauge is non-zero) is
// declared stalled, and the watchdog assembles a structured report:
// the stage name, how long it has been frozen, the backlog size, and
// the last N trace events from every ring — the flight recorder's
// answer to "what was everyone doing when it wedged?".
//
// Reports flow through a caller-supplied sink (the pipeline logs them
// and self-ingests a ruru.health.stall metric).  SIGUSR1 requests the
// same dump on demand for a live process that merely *looks* slow.
//
// Stages with no backlog gauge (the snapshot timer: time-driven, no
// queue) are considered always-pending — their counter simply has to
// keep moving.

#include <atomic>
#include <csignal>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/trace.hpp"
#include "util/time.hpp"

namespace ruru::obs {

struct WatchdogConfig {
  Duration check_interval = Duration::from_sec(1.0);
  Duration stall_after = Duration::from_sec(5.0);
  std::size_t dump_events = 64;  // newest events per ring in a dump
};

struct WatchdogReport {
  std::string reason;  // "stall" or "dump"
  std::string stage;   // stalled stage name ("" for a requested dump)
  Duration stalled_for{};
  std::uint64_t progress = 0;  // the frozen counter value
  double backlog = 0.0;        // pending items at detection (0 if no gauge)
  std::string dump;            // formatted last-N-events flight record
};

class Watchdog {
 public:
  using ProgressFn = std::function<std::uint64_t()>;
  using BacklogFn = std::function<double()>;
  using ReportSink = std::function<void(const WatchdogReport&)>;

  /// `tracer`/`clock` optional: without a tracer dumps carry only the
  /// stall table; without a clock steady time is used (tests inject a
  /// SimClock and drive poll_now()).
  explicit Watchdog(const WatchdogConfig& config, const Tracer* tracer = nullptr,
                    const Clock* clock = nullptr);
  ~Watchdog();

  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  /// Register before start().  `backlog` may be null (stage is then
  /// treated as always having work, i.e. its counter must keep moving).
  void add_stage(const std::string& name, ProgressFn progress, BacklogFn backlog = nullptr);
  void set_report_sink(ReportSink sink);

  void start();
  void stop();  // idempotent

  /// One evaluation pass (what the thread runs each interval).  A
  /// stage re-arms once its counter moves again, so a recovered stall
  /// can re-fire later.
  void poll_now();

  /// Asks the next poll (or an immediate poll_now()) to emit a full
  /// flight-record dump regardless of stall state.  Async-signal-safe.
  void request_dump() { dump_requested_.store(true, std::memory_order_relaxed); }

  /// Installs a SIGUSR1 handler that calls target->request_dump().
  /// One target per process (latest wins); pass nullptr to uninstall.
  static void install_sigusr1(Watchdog* target);

  [[nodiscard]] std::uint64_t stalls_detected() const {
    return stalls_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t dumps_taken() const {
    return dumps_.load(std::memory_order_relaxed);
  }

  /// The formatted flight record (stall table + last N events/ring).
  [[nodiscard]] std::string dump_text() const;

 private:
  struct Stage {
    std::string name;
    ProgressFn progress;
    BacklogFn backlog;          // may be null
    std::uint64_t last_value = 0;
    Timestamp last_change{};    // when last_value last moved
    bool fired = false;         // stall already reported; re-arms on progress
  };

  void thread_main();
  void emit(const WatchdogReport& report);

  WatchdogConfig config_;
  const Tracer* tracer_;
  SystemClock default_clock_;
  const Clock* clock_;

  mutable std::mutex mu_;  // stages_ + sink_; poll_now() serializes on it
  std::vector<Stage> stages_;
  ReportSink sink_;
  bool primed_ = false;  // first poll only baselines, never fires

  std::atomic<bool> dump_requested_{false};
  std::atomic<std::uint64_t> stalls_{0};
  std::atomic<std::uint64_t> dumps_{0};

  std::mutex wake_mu_;
  std::condition_variable wake_cv_;
  bool stopping_ = false;
  bool started_ = false;
  std::thread thread_;
};

}  // namespace ruru::obs
