#include "obs/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>

namespace ruru::obs {

const char* to_string(TraceStage s) {
  switch (s) {
    case TraceStage::kNic: return "nic";
    case TraceStage::kWorker: return "worker";
    case TraceStage::kFlow: return "flow";
    case TraceStage::kBus: return "bus";
    case TraceStage::kEnrich: return "enrich";
    case TraceStage::kTsdb: return "tsdb";
    case TraceStage::kControl: return "control";
  }
  return "?";
}

namespace {

std::size_t round_up_pow2(std::size_t v) {
  std::size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

}  // namespace

TraceRing::TraceRing(std::size_t capacity) {
  const std::size_t cap = round_up_pow2(capacity < 2 ? 2 : capacity);
  slots_ = std::make_unique<Slot[]>(cap);
  mask_ = cap - 1;
}

void TraceRing::snapshot(std::vector<TraceEvent>& out) const {
  out.clear();
  const std::size_t cap = mask_ + 1;
  const std::uint64_t h1 = head_.load(std::memory_order_acquire);
  const std::uint64_t lo1 = h1 > cap ? h1 - cap : 0;

  // Raw copy first; validate against the post-copy head afterwards.
  struct Raw {
    std::uint64_t gen, w0, w1, w2;
  };
  std::vector<Raw> raw;
  raw.reserve(static_cast<std::size_t>(h1 - lo1));
  for (std::uint64_t g = lo1; g < h1; ++g) {
    const Slot& s = slots_[g & mask_];
    raw.push_back({g, s.w0.load(std::memory_order_relaxed),
                   s.w1.load(std::memory_order_relaxed),
                   s.w2.load(std::memory_order_relaxed)});
  }

  // A writer reuses slot g only after publishing head = g + capacity,
  // so any slot whose generation satisfies g + capacity > h2 cannot
  // have been mid-rewrite while we copied it.  Equivalently: keep
  // g >= lo2 where lo2 = h2 - capacity + 1.  At most the single
  // oldest copied entry is discarded per lap the writer gained on us.
  const std::uint64_t h2 = head_.load(std::memory_order_acquire);
  const std::uint64_t lo2 = h2 >= cap ? h2 - cap + 1 : 0;
  for (const Raw& r : raw) {
    if (r.gen < lo2) continue;
    out.push_back(TraceEvent::from_words(r.w0, r.w1, r.w2));
  }
}

void Tracer::configure(const TracerConfig& config) {
  std::lock_guard<std::mutex> lock(mu_);
  config_ = config;
  if (config_.ring_capacity < 2) config_.ring_capacity = 2;
}

TraceHandle Tracer::ring(const std::string& name) { return ring_impl(name, false); }

TraceHandle Tracer::shared_ring(const std::string& name) { return ring_impl(name, true); }

TraceHandle Tracer::ring_impl(const std::string& name, bool shared) {
  if (!enabled()) return TraceHandle{};
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [n, r] : rings_) {
    if (n == name) return TraceHandle{r.get(), shared};
  }
  rings_.emplace_back(name, std::make_unique<TraceRing>(config_.ring_capacity));
  return TraceHandle{rings_.back().second.get(), shared};
}

void Tracer::snapshot_all(
    std::vector<std::pair<std::string, std::vector<TraceEvent>>>& out) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, ring] : rings_) {
    std::vector<TraceEvent> events;
    ring->snapshot(events);
    out.emplace_back(name, std::move(events));
  }
}

std::uint64_t Tracer::events_emitted() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t total = 0;
  for (const auto& [name, ring] : rings_) total += ring->emitted();
  return total;
}

namespace {

// chrome://tracing wants microsecond floats; keep ns precision with
// three decimals.  Avoids iostream locale surprises via snprintf.
void append_us(std::string& out, std::int64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld.%03lld",
                static_cast<long long>(ns / 1000),
                static_cast<long long>(ns < 0 ? -(ns % 1000) : ns % 1000));
  out += buf;
}

void append_event_json(std::string& out, const TraceEvent& e, int tid, bool& first) {
  const char* stage = to_string(e.stage);
  if (!first) out += ",\n";
  first = false;
  out += R"({"name":")";
  out += stage;
  out += R"(","cat":")";
  out += stage;
  out += R"(","ph":")";
  out += e.kind == TraceKind::kSpan ? 'X' : 'i';
  out += R"(","pid":1,"tid":)";
  out += std::to_string(tid);
  out += R"(,"ts":)";
  append_us(out, e.ts_ns);
  if (e.kind == TraceKind::kSpan) {
    out += R"(,"dur":)";
    append_us(out, static_cast<std::int64_t>(e.dur_ns));
  } else {
    out += R"(,"s":"t")";  // instant scope: thread
  }
  out += R"(,"args":{"trace_id":)";
  out += std::to_string(e.trace_id);
  out += R"(,"arg":)";
  out += std::to_string(e.arg);
  out += R"(,"shard":)";
  out += std::to_string(e.shard);
  out += "}}";
}

// Flow events ("s" start / "t" step / "f" finish) connect one sampled
// packet's spans across tracks.  Chrome binds a flow event to the
// enclosing slice by timestamp, so each is stamped just inside its
// span's interval.
void append_flow_json(std::string& out, const TraceEvent& e, int tid, bool start,
                      bool finish, bool& first) {
  if (!first) out += ",\n";
  first = false;
  out += R"({"name":"pkt","cat":"lifecycle","ph":")";
  out += start ? 's' : (finish ? 'f' : 't');
  out += R"(","id":)";
  out += std::to_string(e.trace_id);
  out += R"(,"pid":1,"tid":)";
  out += std::to_string(tid);
  out += R"(,"ts":)";
  append_us(out, e.ts_ns);
  if (finish) out += R"(,"bp":"e")";
  out += "}";
}

}  // namespace

std::string Tracer::export_chrome_json() const {
  std::vector<std::pair<std::string, std::vector<TraceEvent>>> snap;
  snapshot_all(snap);

  std::string out;
  out.reserve(1 << 16);
  out += "{\"traceEvents\":[\n";
  bool first = true;

  // One tid per ring, with a thread_name metadata record so the UI
  // shows "worker.q0", "enrich.w1", ... instead of bare numbers.
  for (std::size_t i = 0; i < snap.size(); ++i) {
    if (!first) out += ",\n";
    first = false;
    out += R"({"name":"thread_name","ph":"M","pid":1,"tid":)";
    out += std::to_string(i + 1);
    out += R"(,"args":{"name":")";
    out += snap[i].first;
    out += "\"}}";
  }

  struct Placed {
    TraceEvent e;
    int tid;
  };
  std::vector<Placed> all;
  for (std::size_t i = 0; i < snap.size(); ++i) {
    for (const TraceEvent& e : snap[i].second) {
      all.push_back({e, static_cast<int>(i + 1)});
    }
  }
  std::stable_sort(all.begin(), all.end(),
                   [](const Placed& a, const Placed& b) { return a.e.ts_ns < b.e.ts_ns; });

  for (const Placed& p : all) append_event_json(out, p.e, p.tid, first);

  // Group per-packet events by trace id to emit the connecting flow
  // arrows in lifecycle order.
  struct Ref {
    std::size_t idx;
  };
  std::vector<std::pair<std::uint32_t, std::vector<std::size_t>>> by_id;
  for (std::size_t i = 0; i < all.size(); ++i) {
    if (all[i].e.trace_id == 0) continue;
    auto it = std::find_if(by_id.begin(), by_id.end(),
                           [&](const auto& kv) { return kv.first == all[i].e.trace_id; });
    if (it == by_id.end()) {
      by_id.emplace_back(all[i].e.trace_id, std::vector<std::size_t>{i});
    } else {
      it->second.push_back(i);
    }
  }
  for (const auto& [id, idxs] : by_id) {
    if (idxs.size() < 2) continue;  // nothing to connect
    for (std::size_t k = 0; k < idxs.size(); ++k) {
      const Placed& p = all[idxs[k]];
      append_flow_json(out, p.e, p.tid, k == 0, k + 1 == idxs.size(), first);
    }
  }

  out += "\n]}\n";
  return out;
}

bool Tracer::export_chrome_json_file(const std::string& path) const {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) return false;
  f << export_chrome_json();
  return static_cast<bool>(f);
}

}  // namespace ruru::obs
