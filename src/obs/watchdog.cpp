#include "obs/watchdog.hpp"

#include <chrono>
#include <cstdio>
#include <sstream>

#include "util/logging.hpp"

namespace ruru::obs {

namespace {

// SIGUSR1 target.  The handler does exactly one relaxed atomic store
// through this pointer — no locks, no allocation — so it stays
// async-signal-safe.
std::atomic<Watchdog*> g_sigusr1_target{nullptr};

void sigusr1_handler(int) {
  Watchdog* w = g_sigusr1_target.load(std::memory_order_relaxed);
  if (w != nullptr) w->request_dump();
}

}  // namespace

Watchdog::Watchdog(const WatchdogConfig& config, const Tracer* tracer, const Clock* clock)
    : config_(config), tracer_(tracer), clock_(clock != nullptr ? clock : &default_clock_) {
  if (config_.check_interval.ns <= 0) config_.check_interval = Duration::from_sec(1.0);
  if (config_.stall_after.ns <= 0) config_.stall_after = Duration::from_sec(5.0);
  if (config_.dump_events == 0) config_.dump_events = 64;
}

Watchdog::~Watchdog() {
  stop();
  // Never leave a dangling signal target behind.
  Watchdog* self = this;
  g_sigusr1_target.compare_exchange_strong(self, nullptr, std::memory_order_relaxed);
}

void Watchdog::add_stage(const std::string& name, ProgressFn progress, BacklogFn backlog) {
  std::lock_guard lock(mu_);
  Stage s;
  s.name = name;
  s.progress = std::move(progress);
  s.backlog = std::move(backlog);
  stages_.push_back(std::move(s));
  primed_ = false;  // new stage needs a baseline pass
}

void Watchdog::set_report_sink(ReportSink sink) {
  std::lock_guard lock(mu_);
  sink_ = std::move(sink);
}

void Watchdog::start() {
  if (started_) return;
  started_ = true;
  stopping_ = false;
  thread_ = std::thread([this] { thread_main(); });
}

void Watchdog::stop() {
  if (!started_) return;
  {
    std::lock_guard lock(wake_mu_);
    stopping_ = true;
  }
  wake_cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  started_ = false;
}

void Watchdog::install_sigusr1(Watchdog* target) {
  g_sigusr1_target.store(target, std::memory_order_relaxed);
  struct sigaction sa = {};
  if (target != nullptr) {
    sa.sa_handler = sigusr1_handler;
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = SA_RESTART;
  } else {
    sa.sa_handler = SIG_DFL;
  }
  sigaction(SIGUSR1, &sa, nullptr);
}

std::string Watchdog::dump_text() const {
  std::ostringstream os;
  {
    std::lock_guard lock(mu_);
    os << "=== watchdog flight record ===\n";
    const Timestamp now = clock_->now();
    for (const Stage& s : stages_) {
      os << "stage " << s.name << ": progress=" << s.last_value;
      if (s.backlog) os << " backlog=" << s.backlog();
      os << " idle=" << to_string(now - s.last_change) << (s.fired ? " [STALLED]" : "")
         << "\n";
    }
  }
  if (tracer_ != nullptr) {
    std::vector<std::pair<std::string, std::vector<TraceEvent>>> snap;
    tracer_->snapshot_all(snap);
    for (const auto& [name, events] : snap) {
      os << "ring " << name << " (" << events.size() << " events";
      const std::size_t n =
          events.size() < config_.dump_events ? events.size() : config_.dump_events;
      os << ", last " << n << "):\n";
      for (std::size_t i = events.size() - n; i < events.size(); ++i) {
        const TraceEvent& e = events[i];
        char line[160];
        std::snprintf(line, sizeof(line),
                      "  ts=%lld %s/%s id=%u dur=%uns arg=%u shard=%u\n",
                      static_cast<long long>(e.ts_ns), to_string(e.stage),
                      e.kind == TraceKind::kSpan ? "span" : "inst", e.trace_id, e.dur_ns,
                      e.arg, e.shard);
        os << line;
      }
    }
  }
  return os.str();
}

void Watchdog::emit(const WatchdogReport& report) {
  ReportSink sink;
  {
    std::lock_guard lock(mu_);
    sink = sink_;
  }
  if (report.reason == "stall") {
    stalls_.fetch_add(1, std::memory_order_relaxed);
    RURU_LOG(kError, "watchdog") << "stage '" << report.stage << "' stalled for "
                                 << to_string(report.stalled_for) << " at progress "
                                 << report.progress << " with backlog " << report.backlog;
  } else {
    dumps_.fetch_add(1, std::memory_order_relaxed);
    RURU_LOG(kInfo, "watchdog") << "flight-record dump requested";
  }
  if (sink) sink(report);
}

void Watchdog::poll_now() {
  const Timestamp now = clock_->now();
  std::vector<WatchdogReport> to_emit;
  {
    std::lock_guard lock(mu_);
    if (!primed_) {
      for (Stage& s : stages_) {
        s.last_value = s.progress ? s.progress() : 0;
        s.last_change = now;
        s.fired = false;
      }
      primed_ = true;
    } else {
      for (Stage& s : stages_) {
        const std::uint64_t v = s.progress ? s.progress() : 0;
        if (v != s.last_value) {
          s.last_value = v;
          s.last_change = now;
          s.fired = false;  // recovered: re-arm
          continue;
        }
        const Duration idle = now - s.last_change;
        if (s.fired || idle < config_.stall_after) continue;
        const double backlog = s.backlog ? s.backlog() : 0.0;
        // No backlog gauge => time-driven stage, counter must always
        // move.  With a gauge, an empty queue idling is healthy.
        if (s.backlog && backlog <= 0.0) continue;
        s.fired = true;
        WatchdogReport r;
        r.reason = "stall";
        r.stage = s.name;
        r.stalled_for = idle;
        r.progress = v;
        r.backlog = backlog;
        to_emit.push_back(std::move(r));
      }
    }
  }

  if (dump_requested_.exchange(false, std::memory_order_relaxed)) {
    WatchdogReport r;
    r.reason = "dump";
    to_emit.push_back(std::move(r));
  }

  if (to_emit.empty()) return;
  const std::string dump = dump_text();
  for (WatchdogReport& r : to_emit) {
    r.dump = dump;
    emit(r);
  }
}

void Watchdog::thread_main() {
  RURU_LOG(kDebug, "watchdog") << "started, interval "
                               << to_string(config_.check_interval) << ", stall after "
                               << to_string(config_.stall_after);
  std::unique_lock lock(wake_mu_);
  while (!stopping_) {
    if (wake_cv_.wait_for(lock, std::chrono::nanoseconds(config_.check_interval.ns),
                          [this] { return stopping_; })) {
      break;
    }
    lock.unlock();
    poll_now();
    lock.lock();
  }
}

}  // namespace ruru::obs
