#include "obs/exporters.hpp"

#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>

#include "util/json_writer.hpp"
#include "util/logging.hpp"

namespace ruru::obs {

namespace {

/// "nic.rx_packets" -> "ruru_nic_rx_packets" (Prometheus name charset
/// is [a-zA-Z0-9_:]; anything else becomes '_').
std::string prometheus_name(std::string_view name) {
  std::string out = "ruru_";
  out.reserve(out.size() + name.size());
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  return out;
}

void append_double(std::string& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}

}  // namespace

std::string escape_label_value(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '"': out += "\\\""; break;
      default: out.push_back(c);
    }
  }
  return out;
}

std::string render_prometheus(const MetricsSnapshot& snap) {
  std::string out;
  out.reserve(4096);
  for (const auto& [name, value] : snap.counters) {
    const std::string p = prometheus_name(name);
    out += "# TYPE " + p + " counter\n";
    out += p + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, value] : snap.gauges) {
    const std::string p = prometheus_name(name);
    out += "# TYPE " + p + " gauge\n";
    out += p + " ";
    append_double(out, value);
    out += "\n";
  }
  for (const auto& [name, stats] : snap.histograms) {
    const std::string p = prometheus_name(name);
    out += "# TYPE " + p + " summary\n";
    for (const auto& [label, q] : {std::pair<const char*, double>{"0.5", 0.5},
                                   {"0.95", 0.95},
                                   {"0.99", 0.99}}) {
      out += p + "{quantile=\"" + escape_label_value(label) + "\"} " +
             std::to_string(stats.percentile(q)) + "\n";
    }
    out += p + "_sum " + std::to_string(stats.sum) + "\n";
    out += p + "_count " + std::to_string(stats.count) + "\n";
  }
  return out;
}

std::string render_json_line(const MetricsSnapshot& snap, const SnapshotDelta& delta) {
  JsonWriter w;
  w.begin_object();
  w.key("ts_s").value(snap.taken_at.to_sec());
  w.key("interval_s").value(delta.interval_s);
  w.key("counters").begin_object();
  for (const auto& [name, value] : snap.counters) {
    w.key(name).begin_object();
    w.key("total").value(value);
    if (const MetricRate* r = delta.counter(name)) w.key("rate").value(r->per_sec);
    w.end_object();
  }
  w.end_object();
  w.key("gauges").begin_object();
  for (const auto& [name, value] : snap.gauges) w.key(name).value(value);
  w.end_object();
  w.key("histograms").begin_object();
  for (const auto& [name, stats] : snap.histograms) {
    w.key(name).begin_object();
    w.key("count").value(stats.count);
    w.key("min_ns").value(stats.min);
    w.key("max_ns").value(stats.max);
    w.key("mean_ns").value(stats.mean());
    w.key("p50_ns").value(stats.percentile(0.5));
    w.key("p95_ns").value(stats.percentile(0.95));
    w.key("p99_ns").value(stats.percentile(0.99));
    w.end_object();
  }
  w.end_object();
  w.end_object();
  return w.take();
}

// --- PrometheusExporter ---

PrometheusExporter::PrometheusExporter(std::ostream& out) : out_(&out) {}
PrometheusExporter::PrometheusExporter(std::string path) : path_(std::move(path)) {}

void PrometheusExporter::export_snapshot(const MetricsSnapshot& snap,
                                         const SnapshotDelta& /*delta*/) {
  const std::string text = render_prometheus(snap);
  if (out_ != nullptr) {
    (*out_) << text << "\n";
    out_->flush();
    return;
  }
  std::ofstream f(path_, std::ios::trunc);
  if (!f) {
    RURU_LOG_EVERY_N(kWarn, "obs", 60) << "cannot write prometheus file '" << path_ << "'";
    return;
  }
  f << text;
}

// --- JsonLinesExporter ---

JsonLinesExporter::JsonLinesExporter(std::ostream& out) : out_(&out) {}
JsonLinesExporter::JsonLinesExporter(std::string path) : path_(std::move(path)) {}

void JsonLinesExporter::export_snapshot(const MetricsSnapshot& snap,
                                        const SnapshotDelta& delta) {
  const std::string line = render_json_line(snap, delta);
  if (out_ != nullptr) {
    (*out_) << line << "\n";
    out_->flush();
    return;
  }
  std::ofstream f(path_, std::ios::app);
  if (!f) {
    RURU_LOG_EVERY_N(kWarn, "obs", 60) << "cannot append metrics json to '" << path_ << "'";
    return;
  }
  f << line << "\n";
}

void JsonLinesExporter::flush() {
  if (out_ != nullptr) out_->flush();
  // The file form opens, writes and closes per snapshot; every line is
  // already on disk by the time flush() runs.
}

// --- SelfIngestExporter ---

SelfIngestExporter::SelfIngestExporter(TsdbEngine& db) : db_(db) {}

void SelfIngestExporter::export_snapshot(const MetricsSnapshot& snap,
                                         const SnapshotDelta& delta) {
  const Timestamp t = snap.taken_at;
  const auto measurement = [](std::string_view name) {
    return std::string(kPrefix) + std::string(name);
  };
  const auto tagged = [](const char* stat) { return TagSet{}.add("stat", stat); };

  for (const auto& [name, value] : snap.counters) {
    db_.write(measurement(name), tagged("total"), t, static_cast<double>(value));
    if (const MetricRate* r = delta.counter(name)) {
      db_.write(measurement(name), tagged("rate"), t, r->per_sec);
    }
  }
  for (const auto& [name, value] : snap.gauges) {
    db_.write(measurement(name), tagged("value"), t, value);
  }
  for (std::size_t i = 0; i < snap.histograms.size(); ++i) {
    const auto& [name, stats] = snap.histograms[i];
    const std::string m = measurement(name);
    db_.write(m, tagged("count"), t, static_cast<double>(stats.count));
    db_.write(m, tagged("mean"), t, stats.mean());
    db_.write(m, tagged("p50"), t, static_cast<double>(stats.percentile(0.5)));
    db_.write(m, tagged("p95"), t, static_cast<double>(stats.percentile(0.95)));
    db_.write(m, tagged("p99"), t, static_cast<double>(stats.percentile(0.99)));
    if (i < delta.histogram_counts.size() && delta.histogram_counts[i].name == name) {
      db_.write(m, tagged("rate"), t, delta.histogram_counts[i].per_sec);
    }
  }
}

}  // namespace ruru::obs
