#pragma once
// Pluggable snapshot exporters: where the telemetry goes.
//
// The SnapshotTimer fans each (snapshot, delta) pair out to every
// registered exporter.  Three ship in-tree, mirroring the paper's
// operational setup (InfluxDB + Grafana dashboards):
//  * PrometheusExporter — text exposition format, rewritten per
//    snapshot (node-exporter textfile-collector style);
//  * JsonLinesExporter — one JSON object per snapshot appended to a
//    stream, for ad-hoc scripting and the examples' --metrics flag;
//  * SelfIngestExporter — writes "ruru.self.*" series into the
//    pipeline's own TSDB engine, so dashboards chart pipeline health
//    (drop rates, queue depths, stage latencies) next to the traffic
//    latency the pipeline exists to measure.
//
// Exporters run on the snapshot thread only; implementations need no
// internal locking unless they share state with other threads.

#include <iosfwd>
#include <memory>
#include <string>

#include "obs/metrics.hpp"
#include "tsdb/query.hpp"

namespace ruru::obs {

class MetricsExporter {
 public:
  virtual ~MetricsExporter() = default;
  virtual void export_snapshot(const MetricsSnapshot& snap, const SnapshotDelta& delta) = 0;
  /// Called when the snapshot stream ends (timer shutdown, final
  /// snapshot written).  Exporters holding buffered output push it to
  /// its destination here; the default is a no-op for exporters that
  /// write through on every snapshot.
  virtual void flush() {}
  [[nodiscard]] virtual std::string_view name() const = 0;
};

/// Escapes a Prometheus label value per the exposition format: backslash
/// -> '\\', newline -> '\n', double-quote -> '\"'.  Everything else
/// passes through untouched.
[[nodiscard]] std::string escape_label_value(std::string_view value);

/// Renders a snapshot in Prometheus text exposition format.  Metric
/// names are sanitized ("nic.rx_packets" -> "ruru_nic_rx_packets");
/// histograms render as summaries (quantile labels + _sum/_count).
[[nodiscard]] std::string render_prometheus(const MetricsSnapshot& snap);

/// Renders a snapshot as one JSON object (single line, no trailing
/// newline): {"ts_s":..., "interval_s":..., "counters":{name:{"total":..,
/// "rate":..}}, "gauges":{...}, "histograms":{name:{"count":..,...}}}.
[[nodiscard]] std::string render_json_line(const MetricsSnapshot& snap,
                                           const SnapshotDelta& delta);

/// Rewrites the full exposition into a stream (seek-to-start when the
/// stream supports it) or a file each snapshot.
class PrometheusExporter final : public MetricsExporter {
 public:
  /// Writes to `out` (not owned; appends a fresh exposition per
  /// snapshot, separated by a blank line).
  explicit PrometheusExporter(std::ostream& out);
  /// Rewrites `path` atomically-ish (truncate + write) per snapshot.
  explicit PrometheusExporter(std::string path);

  void export_snapshot(const MetricsSnapshot& snap, const SnapshotDelta& delta) override;
  [[nodiscard]] std::string_view name() const override { return "prometheus"; }

 private:
  std::ostream* out_ = nullptr;
  std::string path_;
};

/// Appends one JSON line per snapshot.
class JsonLinesExporter final : public MetricsExporter {
 public:
  explicit JsonLinesExporter(std::ostream& out);
  explicit JsonLinesExporter(std::string path);

  void export_snapshot(const MetricsSnapshot& snap, const SnapshotDelta& delta) override;
  /// Syncs the destination stream (or is a no-op for the file form,
  /// which opens/closes per line and is already durable).
  void flush() override;
  [[nodiscard]] std::string_view name() const override { return "jsonl"; }

 private:
  std::ostream* out_ = nullptr;
  std::string path_;
};

/// Dogfoods pipeline health into the TSDB as "ruru.self.<metric>"
/// measurements: counters write stat=total and stat=rate points, gauges
/// stat=value, histograms stat=p50/p95/p99/mean plus stat=rate (interval
/// event rate).  `db` must outlive the exporter.
class SelfIngestExporter final : public MetricsExporter {
 public:
  explicit SelfIngestExporter(TsdbEngine& db);

  void export_snapshot(const MetricsSnapshot& snap, const SnapshotDelta& delta) override;
  [[nodiscard]] std::string_view name() const override { return "self-ingest"; }

  static constexpr std::string_view kPrefix = "ruru.self.";

 private:
  TsdbEngine& db_;
};

}  // namespace ruru::obs
