#pragma once
// Calibrated TSC clock for trace timestamps.
//
// Trace events are emitted on the per-packet path, where a
// clock_gettime vsyscall (~20-30ns) would dominate the cost of the
// event itself.  The cycle counter (rdtsc on x86_64, cntvct_el0 on
// aarch64) reads in a few cycles, but ticks in its own unit.  We
// calibrate it once at startup against steady_clock over a short
// window and from then on convert ticks to nanoseconds with one
// multiply — anchored to steady_clock's epoch, so TSC timestamps are
// directly comparable with SystemClock values elsewhere in the
// pipeline (queue-wait spans subtract a TSC stamp from a TSC stamp,
// but metrics code mixing the two stays coherent).
//
// The scalar steady_clock read is kept as the oracle: calibration
// sanity-checks the inferred rate against it and tests assert the two
// clocks agree within a drift bound over a measured interval.  On
// targets with no usable cycle counter the clock silently degrades to
// the oracle — same API, just slower.

#include <cstdint>

#include <chrono>

#include "util/time.hpp"

namespace ruru::obs {

/// Raw cycle-counter read.  Returns 0 on targets without one (the
/// calibration then marks itself unusable and the steady fallback
/// takes over).
inline std::uint64_t rdtsc_ticks() {
#if defined(__x86_64__) || defined(_M_X64)
  return __builtin_ia32_rdtsc();
#elif defined(__aarch64__)
  std::uint64_t v;
  asm volatile("mrs %0, cntvct_el0" : "=r"(v));
  return v;
#else
  return 0;
#endif
}

/// The oracle: steady_clock in nanoseconds, same epoch SystemClock uses.
inline std::int64_t steady_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Two-point calibration: tick/steady pairs taken `window_us` apart.
/// ns(t) = ns0 + (t - tick0) * ns_per_tick.
struct TscCalibration {
  bool usable = false;
  std::uint64_t tick0 = 0;
  std::int64_t ns0 = 0;
  double ns_per_tick = 0.0;
};

/// Calibrates the cycle counter against steady_clock.  Spins for
/// ~window_us (default 2ms — long enough that the ~100ns read jitter
/// at each endpoint contributes <0.01% rate error), then derives the
/// tick rate.  Marks the result unusable when the counter is absent,
/// frozen, or implies an implausible frequency (<1MHz or >10GHz —
/// both outside any real invariant-TSC / generic-timer range).
inline TscCalibration calibrate_tsc(std::int64_t window_us = 2000) {
  TscCalibration cal;
  cal.tick0 = rdtsc_ticks();
  cal.ns0 = steady_now_ns();
  if (rdtsc_ticks() == 0) return cal;  // no counter on this target

  const std::int64_t window_ns = window_us * 1000;
  std::int64_t ns1 = cal.ns0;
  while (ns1 - cal.ns0 < window_ns) ns1 = steady_now_ns();
  const std::uint64_t tick1 = rdtsc_ticks();

  if (tick1 <= cal.tick0) return cal;  // frozen or wrapping counter
  const double ticks = static_cast<double>(tick1 - cal.tick0);
  const double ns = static_cast<double>(ns1 - cal.ns0);
  const double ticks_per_sec = ticks * 1e9 / ns;
  if (ticks_per_sec < 1e6 || ticks_per_sec > 1e10) return cal;

  cal.ns_per_tick = ns / ticks;
  cal.usable = true;
  return cal;
}

/// Clock whose now() is one rdtsc + one fma after calibration.
/// Falls back to the steady oracle when calibration failed, so
/// callers never need to branch on usability themselves.
class TscClock final : public Clock {
 public:
  TscClock() : cal_(calibrate_tsc()) {}
  explicit TscClock(const TscCalibration& cal) : cal_(cal) {}

  [[nodiscard]] Timestamp now() const override { return Timestamp{now_ns()}; }

  [[nodiscard]] std::int64_t now_ns() const {
    if (!cal_.usable) return steady_now_ns();
    const std::uint64_t t = rdtsc_ticks();
    return cal_.ns0 +
           static_cast<std::int64_t>(static_cast<double>(t - cal_.tick0) * cal_.ns_per_tick);
  }

  /// The scalar oracle, exposed so tests can measure drift.
  [[nodiscard]] static std::int64_t oracle_now_ns() { return steady_now_ns(); }

  [[nodiscard]] const TscCalibration& calibration() const { return cal_; }

 private:
  TscCalibration cal_;
};

/// Process-wide trace clock, calibrated once on first use.  Every
/// stage stamps spans from this instance so all trace timestamps —
/// and the queue-wait metrics that share the timebase — are mutually
/// comparable.
inline const TscClock& trace_clock() {
  static const TscClock clock;
  return clock;
}

inline std::int64_t trace_now_ns() { return trace_clock().now_ns(); }

}  // namespace ruru::obs
