#include "obs/snapshot_timer.hpp"

#include <chrono>

#include "util/logging.hpp"

namespace ruru::obs {

SnapshotTimer::SnapshotTimer(MetricsRegistry& registry, Duration interval, const Clock* clock)
    : registry_(registry),
      interval_(interval.ns > 0 ? interval : Duration::from_sec(1.0)),
      clock_(clock != nullptr ? clock : &default_clock_) {}

SnapshotTimer::~SnapshotTimer() { stop(); }

void SnapshotTimer::add_exporter(std::shared_ptr<MetricsExporter> exporter) {
  if (exporter) exporters_.push_back(std::move(exporter));
}

void SnapshotTimer::start() {
  if (started_) return;
  started_ = true;
  stopping_ = false;
  final_done_ = false;
  thread_ = std::thread([this] { thread_main(); });
}

void SnapshotTimer::stop() {
  if (started_) {
    {
      std::lock_guard lock(wake_mu_);
      stopping_ = true;
    }
    wake_cv_.notify_all();
    if (thread_.joinable()) thread_.join();
    started_ = false;
  }
  // Final drain runs once per cycle whether or not the thread ever ran:
  // a timer that was configured but never started still owes its
  // exporters one snapshot, and buffered exporters owe their stream a
  // flush.
  if (final_done_) return;
  final_done_ = true;
  tick();  // final snapshot: short runs still export once
  for (const auto& exporter : exporters_) exporter->flush();
}

void SnapshotTimer::tick() {
  std::lock_guard lock(tick_mu_);
  MetricsSnapshot snap = registry_.snapshot(clock_->now());
  const SnapshotDelta delta =
      have_prev_ ? SnapshotDelta::between(prev_, snap) : SnapshotDelta::between(snap, snap);
  for (const auto& exporter : exporters_) exporter->export_snapshot(snap, delta);
  prev_ = std::move(snap);
  have_prev_ = true;
  ++tick_count_;
}

std::uint64_t SnapshotTimer::ticks() const {
  std::lock_guard lock(tick_mu_);
  return tick_count_;
}

MetricsSnapshot SnapshotTimer::last_snapshot() const {
  std::lock_guard lock(tick_mu_);
  return prev_;
}

void SnapshotTimer::thread_main() {
  RURU_LOG(kDebug, "obs") << "snapshot timer started, interval "
                          << to_string(interval_);
  std::unique_lock lock(wake_mu_);
  while (!stopping_) {
    if (wake_cv_.wait_for(lock, std::chrono::nanoseconds(interval_.ns),
                          [this] { return stopping_; })) {
      break;  // stop() will take the final snapshot
    }
    lock.unlock();
    tick();
    lock.lock();
  }
}

}  // namespace ruru::obs
