#pragma once
// Flight-recorder tracing: per-stage ring buffers of fixed-size
// binary trace events, a 1-in-N packet-lifecycle sampler, and a
// Chrome trace_event JSON exporter.
//
// The design constraint is the untraced hot path: workers poll tens
// of thousands of bursts per second, so emission must cost nothing
// when tracing is off and a handful of relaxed stores when it is on.
// Three mechanisms stack to get there:
//
//   1. Compile-time: building with -DRURU_TRACE=0 turns every emit
//      into `if constexpr (false)` — the event structs and call sites
//      vanish entirely.
//   2. Runtime, per-stage: stages hold a TraceHandle, an inert
//      pointer-sized handle (same idiom as obs::HistogramHandle).  A
//      default-constructed handle compiles to one null check.
//   3. Runtime, per-packet: trace ids are a pure function of the RSS
//      hash (`trace_id_for`), assigned at the NIC and re-derivable at
//      any stage from data already in flight — so the wire codec is
//      untouched and the per-packet test is one compare against an
//      id that is almost always zero.
//
// Each ring is single-producer by contract (one ring per worker, per
// enrichment thread); the reader (watchdog / exporter) snapshots
// without stopping the writer and tolerates losing at most the single
// oldest slot to a concurrent overwrite.  The one multi-producer ring
// (the TSDB sink, called under the route-cache mutex's siblings) uses
// an internal mutex — correctness over cleverness for a path that
// fires only for sampled flows.

#include <cstddef>
#include <cstdint>

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#ifndef RURU_TRACE
#define RURU_TRACE 1
#endif

namespace ruru::obs {

inline constexpr bool kTraceCompiled = RURU_TRACE != 0;

/// Pipeline stage a span belongs to.  Order mirrors the packet's
/// journey; the exporter maps each to a chrome://tracing track.
enum class TraceStage : std::uint8_t {
  kNic = 0,
  kWorker = 1,
  kFlow = 2,
  kBus = 3,
  kEnrich = 4,
  kTsdb = 5,
  kControl = 6,
};

enum class TraceKind : std::uint8_t {
  kSpan = 0,     // has a duration
  kInstant = 1,  // point event
};

[[nodiscard]] const char* to_string(TraceStage s);

/// One fixed-size trace event, 24 bytes.  Encoded into three 64-bit
/// words so ring slots can be copied with relaxed atomic loads and a
/// torn slot decodes to garbage rather than UB:
///   w0 = ts_ns
///   w1 = trace_id << 32 | dur_ns
///   w2 = arg << 32 | shard << 16 | kind << 8 | stage
struct TraceEvent {
  std::int64_t ts_ns = 0;     // TSC-clock nanoseconds (steady epoch)
  std::uint32_t trace_id = 0; // 0 = stage-level event, not per-packet
  std::uint32_t dur_ns = 0;   // span length, saturated at ~4.29s
  std::uint32_t arg = 0;      // stage-defined (queue id, batch size, ...)
  TraceStage stage = TraceStage::kControl;
  TraceKind kind = TraceKind::kInstant;
  std::uint16_t shard = 0;    // worker / enricher index

  [[nodiscard]] std::uint64_t word0() const { return static_cast<std::uint64_t>(ts_ns); }
  [[nodiscard]] std::uint64_t word1() const {
    return (static_cast<std::uint64_t>(trace_id) << 32) | dur_ns;
  }
  [[nodiscard]] std::uint64_t word2() const {
    return (static_cast<std::uint64_t>(arg) << 32) |
           (static_cast<std::uint64_t>(shard) << 16) |
           (static_cast<std::uint64_t>(kind) << 8) | static_cast<std::uint64_t>(stage);
  }

  static TraceEvent from_words(std::uint64_t w0, std::uint64_t w1, std::uint64_t w2) {
    TraceEvent e;
    e.ts_ns = static_cast<std::int64_t>(w0);
    e.trace_id = static_cast<std::uint32_t>(w1 >> 32);
    e.dur_ns = static_cast<std::uint32_t>(w1);
    e.arg = static_cast<std::uint32_t>(w2 >> 32);
    e.shard = static_cast<std::uint16_t>(w2 >> 16);
    e.kind = static_cast<TraceKind>(static_cast<std::uint8_t>(w2 >> 8));
    e.stage = static_cast<TraceStage>(static_cast<std::uint8_t>(w2));
    return e;
  }
};

/// 1-in-N flow sampler as a pure function of the RSS hash.  Both
/// directions of a flow share the hash (symmetric Toeplitz key), so
/// both map to the same trace id, and every stage that still has the
/// hash can re-derive the id without widening the wire format.
/// Returns 0 (untraced) unless sampling is on and the hash selects.
[[nodiscard]] inline std::uint32_t trace_id_for(std::uint32_t rss_hash,
                                                std::uint32_t sample_n) {
  if constexpr (!kTraceCompiled) return 0;
  if (sample_n == 0 || rss_hash == 0) return 0;
  return rss_hash % sample_n == 0 ? rss_hash : 0;
}

/// Fixed-capacity overwrite-at-capacity event ring.  Writer side is
/// wait-free (three relaxed stores + one release store); the reader
/// snapshots concurrently and is guaranteed the newest capacity-1
/// events intact — the single oldest slot may be dropped if the
/// writer is overwriting it mid-copy (see snapshot() for the proof).
class TraceRing {
 public:
  explicit TraceRing(std::size_t capacity);

  /// Single-producer emit.  Callers on shared rings must use
  /// emit_locked() instead.
  void emit(const TraceEvent& e) {
    const std::uint64_t h = head_.load(std::memory_order_relaxed);
    Slot& s = slots_[h & mask_];
    s.w0.store(e.word0(), std::memory_order_relaxed);
    s.w1.store(e.word1(), std::memory_order_relaxed);
    s.w2.store(e.word2(), std::memory_order_relaxed);
    head_.store(h + 1, std::memory_order_release);
  }

  /// Serialized emit for the rare multi-producer rings (TSDB sink).
  void emit_locked(const TraceEvent& e) {
    std::lock_guard<std::mutex> lock(emit_mu_);
    emit(e);
  }

  /// Replaces `out` with the most recent events, oldest first, without
  /// stopping the writer (capacity of a reused vector is retained, so
  /// a polling caller settles into zero allocations).
  /// Guarantee: every event with generation index in
  /// [h2 - capacity + 1, h1) is intact, where h1/h2 are the head
  /// before/after the copy — the writer only reuses slot g after
  /// publishing head = g + capacity, so seeing h2 < g + capacity
  /// proves slot g was not being rewritten during the copy.
  void snapshot(std::vector<TraceEvent>& out) const;

  [[nodiscard]] std::size_t capacity() const { return mask_ + 1; }
  [[nodiscard]] std::uint64_t emitted() const {
    return head_.load(std::memory_order_relaxed);
  }

 private:
  struct Slot {
    std::atomic<std::uint64_t> w0{0};
    std::atomic<std::uint64_t> w1{0};
    std::atomic<std::uint64_t> w2{0};
  };

  std::unique_ptr<Slot[]> slots_;
  std::uint64_t mask_ = 0;
  std::atomic<std::uint64_t> head_{0};
  std::mutex emit_mu_;  // emit_locked() only; plain emit() never touches it
};

/// Inert-handle wrapper a stage stores by value.  Default-constructed
/// (or with tracing compiled out) every call is a no-op; attached, it
/// forwards to the ring.  `shared` selects the locked emit path.
class TraceHandle {
 public:
  TraceHandle() = default;
  explicit TraceHandle(TraceRing* ring, bool shared = false)
      : ring_(ring), shared_(shared) {}

  [[nodiscard]] bool attached() const {
    if constexpr (!kTraceCompiled) return false;
    return ring_ != nullptr;
  }

  // Emission is const: it writes through the ring pointer, never to the
  // handle itself, so stages may hold the handle in const obs structs.
  void span(TraceStage stage, std::uint32_t trace_id, std::int64_t ts_ns,
            std::int64_t dur_ns, std::uint32_t arg = 0, std::uint16_t shard = 0) const {
    if constexpr (!kTraceCompiled) return;
    if (ring_ == nullptr) return;
    TraceEvent e;
    e.ts_ns = ts_ns;
    e.trace_id = trace_id;
    e.dur_ns = saturate_dur(dur_ns);
    e.arg = arg;
    e.stage = stage;
    e.kind = TraceKind::kSpan;
    e.shard = shard;
    if (shared_) {
      ring_->emit_locked(e);
    } else {
      ring_->emit(e);
    }
  }

  void instant(TraceStage stage, std::uint32_t trace_id, std::int64_t ts_ns,
               std::uint32_t arg = 0, std::uint16_t shard = 0) const {
    if constexpr (!kTraceCompiled) return;
    if (ring_ == nullptr) return;
    TraceEvent e;
    e.ts_ns = ts_ns;
    e.trace_id = trace_id;
    e.arg = arg;
    e.stage = stage;
    e.kind = TraceKind::kInstant;
    e.shard = shard;
    if (shared_) {
      ring_->emit_locked(e);
    } else {
      ring_->emit(e);
    }
  }

 private:
  static std::uint32_t saturate_dur(std::int64_t dur_ns) {
    if (dur_ns <= 0) return 0;
    if (dur_ns > 0xFFFFFFFFll) return 0xFFFFFFFFu;
    return static_cast<std::uint32_t>(dur_ns);
  }

  TraceRing* ring_ = nullptr;
  bool shared_ = false;
};

struct TracerConfig {
  std::uint32_t sample_n = 0;      // 0 = packet-lifecycle sampling off
  std::size_t ring_capacity = 4096;  // events per ring, rounded up to pow2
};

/// Owns the rings and hands out handles.  Registration (pipeline
/// construction) is mutex-guarded; the emit path never touches the
/// tracer again — handles point straight at their ring.
class Tracer {
 public:
  Tracer() = default;

  void configure(const TracerConfig& config);
  [[nodiscard]] bool enabled() const { return kTraceCompiled && config_.sample_n != 0; }
  [[nodiscard]] std::uint32_t sample_n() const { return config_.sample_n; }

  [[nodiscard]] std::uint32_t flow_trace_id(std::uint32_t rss_hash) const {
    return trace_id_for(rss_hash, config_.sample_n);
  }

  /// Registers (or returns the existing) ring under `name` and hands
  /// back a single-producer handle.  Inert handle when tracing is
  /// disabled, so stages can wire unconditionally.
  TraceHandle ring(const std::string& name);
  /// Same, but the handle serializes emits — for the few
  /// multi-producer call sites.
  TraceHandle shared_ring(const std::string& name);

  /// Snapshot of every ring, oldest event first within each.
  void snapshot_all(
      std::vector<std::pair<std::string, std::vector<TraceEvent>>>& out) const;

  /// Chrome trace_event JSON (the "traceEvents" array form), loadable
  /// in chrome://tracing or ui.perfetto.dev.  Spans become "X"
  /// complete events on one track per ring; sampled packet lifecycles
  /// additionally get "s"/"t"/"f" flow events keyed on the trace id so
  /// the UI draws the nic -> ... -> tsdb arrows.
  [[nodiscard]] std::string export_chrome_json() const;
  bool export_chrome_json_file(const std::string& path) const;

  [[nodiscard]] std::uint64_t events_emitted() const;

 private:
  TraceHandle ring_impl(const std::string& name, bool shared);

  TracerConfig config_;
  mutable std::mutex mu_;  // guards rings_ registration + snapshot iteration
  std::vector<std::pair<std::string, std::unique_ptr<TraceRing>>> rings_;
};

}  // namespace ruru::obs
