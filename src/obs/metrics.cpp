#include "obs/metrics.hpp"

#include <algorithm>

namespace ruru::obs {

// --- HistogramStats ---

std::int64_t HistogramStats::percentile(double q) const {
  if (count == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // Same rank arithmetic as Histogram::percentile: 1-based target rank,
  // exact extremes, bucket representatives clamped into [min, max].
  const auto target = static_cast<std::uint64_t>(q * static_cast<double>(count - 1)) + 1;
  if (target <= 1) return min;
  if (target >= count) return max;
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    seen += buckets[i];
    if (seen >= target) return std::clamp(Histogram::bucket_value(i), min, max);
  }
  return max;
}

// --- MetricsSnapshot lookups ---

const std::uint64_t* MetricsSnapshot::counter(std::string_view name) const {
  for (const auto& [n, v] : counters) {
    if (n == name) return &v;
  }
  return nullptr;
}

const double* MetricsSnapshot::gauge(std::string_view name) const {
  for (const auto& [n, v] : gauges) {
    if (n == name) return &v;
  }
  return nullptr;
}

const HistogramStats* MetricsSnapshot::histogram(std::string_view name) const {
  for (const auto& [n, v] : histograms) {
    if (n == name) return &v;
  }
  return nullptr;
}

// --- SnapshotDelta ---

SnapshotDelta SnapshotDelta::between(const MetricsSnapshot& prev, const MetricsSnapshot& cur) {
  SnapshotDelta d;
  d.interval_s = (cur.taken_at - prev.taken_at).to_sec();
  const double dt = d.interval_s > 0 ? d.interval_s : 0.0;
  const auto rate_of = [dt](std::uint64_t delta) {
    return dt > 0 ? static_cast<double>(delta) / dt : 0.0;
  };
  d.counters.reserve(cur.counters.size());
  for (const auto& [name, value] : cur.counters) {
    const std::uint64_t* before = prev.counter(name);
    // A missing or larger previous value (counter reset / first
    // snapshot) yields delta 0, never an underflowed rate spike.
    const std::uint64_t delta =
        (before != nullptr && *before <= value) ? value - *before : 0;
    d.counters.push_back({name, delta, rate_of(delta)});
  }
  d.histogram_counts.reserve(cur.histograms.size());
  for (const auto& [name, stats] : cur.histograms) {
    const HistogramStats* before = prev.histogram(name);
    const std::uint64_t prev_count = before != nullptr ? before->count : 0;
    const std::uint64_t delta = prev_count <= stats.count ? stats.count - prev_count : 0;
    d.histogram_counts.push_back({name, delta, rate_of(delta)});
  }
  return d;
}

const MetricRate* SnapshotDelta::counter(std::string_view name) const {
  for (const auto& r : counters) {
    if (r.name == name) return &r;
  }
  return nullptr;
}

// --- HistogramHandle ---

void HistogramHandle::record_impl(std::int64_t value) const {
  if (value < 0) value = 0;
  detail::HistShard& s = *shard_;
  const std::size_t idx = Histogram::bucket_index(value);
  s.buckets[idx].store(s.buckets[idx].load(std::memory_order_relaxed) + 1,
                       std::memory_order_relaxed);
  const std::uint64_t n = s.count.load(std::memory_order_relaxed);
  if (n == 0) {
    s.min.store(value, std::memory_order_relaxed);
    s.max.store(value, std::memory_order_relaxed);
  } else {
    if (value < s.min.load(std::memory_order_relaxed)) {
      s.min.store(value, std::memory_order_relaxed);
    }
    if (value > s.max.load(std::memory_order_relaxed)) {
      s.max.store(value, std::memory_order_relaxed);
    }
  }
  s.sum.store(s.sum.load(std::memory_order_relaxed) + value, std::memory_order_relaxed);
  // count last: a concurrent snapshot that sees the new count also sees
  // a bucket array whose total is >= count - (shards in flight).
  s.count.store(n + 1, std::memory_order_relaxed);
}

void HistogramHandle::record_shared_impl(std::int64_t value) const {
  if (value < 0) value = 0;
  detail::HistShard& s = *shard_;
  s.buckets[Histogram::bucket_index(value)].fetch_add(1, std::memory_order_relaxed);
  s.sum.fetch_add(value, std::memory_order_relaxed);
  const std::uint64_t prev = s.count.fetch_add(1, std::memory_order_relaxed);
  if (prev == 0) {
    s.min.store(value, std::memory_order_relaxed);
    s.max.store(value, std::memory_order_relaxed);
    return;
  }
  std::int64_t cur = s.min.load(std::memory_order_relaxed);
  while (value < cur &&
         !s.min.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
  cur = s.max.load(std::memory_order_relaxed);
  while (value > cur &&
         !s.max.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
}

// --- MetricsRegistry ---

detail::CounterMetric& MetricsRegistry::counter_metric(const std::string& name) {
  for (auto& m : counters_) {
    if (m->name == name) return *m;
  }
  counters_.push_back(std::make_unique<detail::CounterMetric>());
  counters_.back()->name = name;
  return *counters_.back();
}

detail::HistogramMetric& MetricsRegistry::histogram_metric(const std::string& name) {
  for (auto& m : histograms_) {
    if (m->name == name) return *m;
  }
  histograms_.push_back(std::make_unique<detail::HistogramMetric>());
  histograms_.back()->name = name;
  return *histograms_.back();
}

CounterHandle MetricsRegistry::counter(const std::string& name, std::size_t shard) {
  std::lock_guard lock(mu_);
  detail::CounterMetric& m = counter_metric(name);
  while (m.shards.size() <= shard) {
    m.shards.push_back(std::make_unique<detail::CounterCell>());
  }
  return CounterHandle(m.shards[shard].get());
}

GaugeHandle MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard lock(mu_);
  for (auto& g : gauges_) {
    if (g->name == name) return GaugeHandle(g.get());
  }
  gauges_.push_back(std::make_unique<detail::GaugeMetric>());
  gauges_.back()->name = name;
  return GaugeHandle(gauges_.back().get());
}

HistogramHandle MetricsRegistry::histogram(const std::string& name, std::size_t shard) {
  std::lock_guard lock(mu_);
  detail::HistogramMetric& m = histogram_metric(name);
  while (m.shards.size() <= shard) {
    m.shards.push_back(std::make_unique<detail::HistShard>());
  }
  return HistogramHandle(m.shards[shard].get());
}

void MetricsRegistry::register_counter_fn(std::string name, std::function<std::uint64_t()> fn) {
  std::lock_guard lock(mu_);
  counter_fns_.push_back({std::move(name), std::move(fn)});
}

void MetricsRegistry::register_gauge_fn(std::string name, std::function<double()> fn) {
  std::lock_guard lock(mu_);
  gauge_fns_.push_back({std::move(name), std::move(fn)});
}

MetricsSnapshot MetricsRegistry::snapshot(Timestamp now) const {
  std::lock_guard lock(mu_);
  MetricsSnapshot snap;
  snap.taken_at = now;

  snap.counters.reserve(counters_.size() + counter_fns_.size());
  for (const auto& m : counters_) {
    std::uint64_t total = 0;
    for (const auto& cell : m->shards) total += cell->value.load(std::memory_order_relaxed);
    snap.counters.emplace_back(m->name, total);
  }
  for (const auto& cb : counter_fns_) snap.counters.emplace_back(cb.name, cb.fn());

  snap.gauges.reserve(gauges_.size() + gauge_fns_.size());
  for (const auto& g : gauges_) {
    snap.gauges.emplace_back(g->name, g->value.load(std::memory_order_relaxed));
  }
  for (const auto& cb : gauge_fns_) snap.gauges.emplace_back(cb.name, cb.fn());

  snap.histograms.reserve(histograms_.size());
  for (const auto& m : histograms_) {
    HistogramStats stats;
    stats.buckets.assign(detail::HistShard::kBuckets, 0);
    bool first = true;
    for (const auto& shard : m->shards) {
      const std::uint64_t count = shard->count.load(std::memory_order_relaxed);
      for (std::size_t i = 0; i < stats.buckets.size(); ++i) {
        stats.buckets[i] += shard->buckets[i].load(std::memory_order_relaxed);
      }
      if (count == 0) continue;
      const std::int64_t mn = shard->min.load(std::memory_order_relaxed);
      const std::int64_t mx = shard->max.load(std::memory_order_relaxed);
      if (first) {
        stats.min = mn;
        stats.max = mx;
        first = false;
      } else {
        stats.min = std::min(stats.min, mn);
        stats.max = std::max(stats.max, mx);
      }
      stats.count += count;
      stats.sum += shard->sum.load(std::memory_order_relaxed);
    }
    snap.histograms.emplace_back(m->name, std::move(stats));
  }
  return snap;
}

std::size_t MetricsRegistry::metric_count() const {
  std::lock_guard lock(mu_);
  return counters_.size() + counter_fns_.size() + gauges_.size() + gauge_fns_.size() +
         histograms_.size();
}

}  // namespace ruru::obs
