#pragma once
// Live telemetry: a hot-path-safe metrics registry for the pipeline.
//
// The paper's whole point is continuous visibility into latency, yet the
// pipeline itself was a black box until finish().  This registry gives
// every stage named counters, gauges and log-linear histograms that are
// safe to touch from the data path:
//
//  * metrics are registered ONCE at pipeline construction (a mutex
//    guards registration and snapshot — never the data path);
//  * hot-path handles are raw pointers into shard storage; recording is
//    relaxed atomic loads/stores with no locks and no allocation;
//  * each metric has per-worker shards — one writer per shard, so
//    writers use plain load+store (no RMW lock prefix) — and shards are
//    merged on read by snapshot();
//  * stages that already keep single-writer stat structs (NicStats,
//    WorkerStats, ...) are exposed through callback metrics polled at
//    snapshot time, so the per-packet path is not instrumented twice.
//
// Histograms reuse Histogram's log-linear bucketing (<= ~3.2% relative
// error), stored as per-shard atomic bucket arrays.

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "util/histogram.hpp"
#include "util/time.hpp"

namespace ruru::obs {

/// Merged view of one sharded histogram at snapshot time.  Quantiles are
/// bucket representatives (same error bound as ruru::Histogram).
struct HistogramStats {
  std::uint64_t count = 0;
  std::int64_t sum = 0;
  std::int64_t min = 0;
  std::int64_t max = 0;
  std::vector<std::uint64_t> buckets;  ///< merged across shards

  [[nodiscard]] double mean() const {
    return count != 0 ? static_cast<double>(sum) / static_cast<double>(count) : 0.0;
  }
  /// Value at quantile q in [0,1]; 0 when empty.
  [[nodiscard]] std::int64_t percentile(double q) const;
};

/// Point-in-time, merged-across-shards view of every metric.
struct MetricsSnapshot {
  Timestamp taken_at;
  std::vector<std::pair<std::string, std::uint64_t>> counters;  ///< registration order
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<std::pair<std::string, HistogramStats>> histograms;

  [[nodiscard]] const std::uint64_t* counter(std::string_view name) const;
  [[nodiscard]] const double* gauge(std::string_view name) const;
  [[nodiscard]] const HistogramStats* histogram(std::string_view name) const;
  /// Lookup with a default — the PipelineSummary view uses this.
  [[nodiscard]] std::uint64_t counter_or(std::string_view name, std::uint64_t fallback = 0) const {
    const auto* v = counter(name);
    return v != nullptr ? *v : fallback;
  }
};

/// Per-counter interval delta + rate between two snapshots.
struct MetricRate {
  std::string name;
  std::uint64_t delta = 0;   ///< cur - prev (0 on counter reset)
  double per_sec = 0.0;
};

/// What changed between two snapshots: counter deltas/rates and
/// histogram count deltas (the "events this interval" series).
struct SnapshotDelta {
  double interval_s = 0.0;
  std::vector<MetricRate> counters;
  std::vector<MetricRate> histogram_counts;

  [[nodiscard]] static SnapshotDelta between(const MetricsSnapshot& prev,
                                             const MetricsSnapshot& cur);
  [[nodiscard]] const MetricRate* counter(std::string_view name) const;
};

namespace detail {

// One cache line per cell: shards of one metric never false-share.
struct alignas(64) CounterCell {
  std::atomic<std::uint64_t> value{0};
};

struct alignas(64) HistShard {
  static constexpr std::size_t kBuckets =
      static_cast<std::size_t>(Histogram::kMajors) * Histogram::kMinors;
  HistShard() : buckets(kBuckets) {}  // parens: count ctor, not init-list
  std::vector<std::atomic<std::uint64_t>> buckets;
  std::atomic<std::uint64_t> count{0};
  std::atomic<std::int64_t> sum{0};
  std::atomic<std::int64_t> min{0};
  std::atomic<std::int64_t> max{0};
};

struct CounterMetric {
  std::string name;
  std::vector<std::unique_ptr<CounterCell>> shards;
};

struct GaugeMetric {
  std::string name;
  std::atomic<double> value{0.0};
};

struct HistogramMetric {
  std::string name;
  std::vector<std::unique_ptr<HistShard>> shards;
};

struct CallbackCounter {
  std::string name;
  std::function<std::uint64_t()> fn;
};

struct CallbackGauge {
  std::string name;
  std::function<double()> fn;
};

}  // namespace detail

/// Hot-path handle to one shard of a counter.  Single writer per shard:
/// add() is a relaxed load+store, not an RMW.  Default-constructed
/// handles are inert no-ops (metrics disabled).
class CounterHandle {
 public:
  CounterHandle() = default;
  void add(std::uint64_t n = 1) const {
    if (cell_ == nullptr) return;
    cell_->value.store(cell_->value.load(std::memory_order_relaxed) + n,
                       std::memory_order_relaxed);
  }
  [[nodiscard]] bool attached() const { return cell_ != nullptr; }

 private:
  friend class MetricsRegistry;
  explicit CounterHandle(detail::CounterCell* cell) : cell_(cell) {}
  detail::CounterCell* cell_ = nullptr;
};

/// Hot-path handle to a gauge (single cell; last writer wins).
class GaugeHandle {
 public:
  GaugeHandle() = default;
  void set(double v) const {
    if (cell_ != nullptr) cell_->value.store(v, std::memory_order_relaxed);
  }
  [[nodiscard]] bool attached() const { return cell_ != nullptr; }

 private:
  friend class MetricsRegistry;
  explicit GaugeHandle(detail::GaugeMetric* cell) : cell_(cell) {}
  detail::GaugeMetric* cell_ = nullptr;
};

/// Hot-path handle to one shard of a log-linear histogram.  Single
/// writer per shard; record() is a handful of relaxed loads/stores.
class HistogramHandle {
 public:
  HistogramHandle() = default;
  /// Inert handles (no shard attached) must cost one predictable branch
  /// at the record site — record() sits inside find()/poll loops, so
  /// the null check is inlined here and only attached handles pay the
  /// out-of-line bucketing path.
  void record(std::int64_t value) const {
    if (shard_ == nullptr) return;
    record_impl(value);
  }
  void record(Duration d) const { record(d.ns); }
  /// Multi-writer variant (RMW adds, CAS min/max) for the rare sites
  /// where several threads legitimately share one shard — e.g. timing
  /// around an already-mutex-guarded sink. Counts are exact; min/max are
  /// best-effort during the first concurrent records.
  void record_shared(std::int64_t value) const {
    if (shard_ == nullptr) return;
    record_shared_impl(value);
  }
  void record_shared(Duration d) const { record_shared(d.ns); }
  [[nodiscard]] bool attached() const { return shard_ != nullptr; }

 private:
  friend class MetricsRegistry;
  explicit HistogramHandle(detail::HistShard* shard) : shard_(shard) {}
  void record_impl(std::int64_t value) const;         ///< shard_ != nullptr
  void record_shared_impl(std::int64_t value) const;  ///< shard_ != nullptr
  detail::HistShard* shard_ = nullptr;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // --- registration (construction time; mutex-guarded, not hot) ---

  /// Handle to shard `shard` of counter `name` (created on first use;
  /// shards grow to cover the largest index requested).
  CounterHandle counter(const std::string& name, std::size_t shard = 0);
  GaugeHandle gauge(const std::string& name);
  HistogramHandle histogram(const std::string& name, std::size_t shard = 0);

  /// Callback metrics are polled at snapshot time only — zero data-path
  /// cost.  `fn` must be safe to call from the snapshot thread (read
  /// atomics / StatCells, or take the target's own lock).
  void register_counter_fn(std::string name, std::function<std::uint64_t()> fn);
  void register_gauge_fn(std::string name, std::function<double()> fn);

  /// Merged view of everything, shards summed, callbacks polled.
  [[nodiscard]] MetricsSnapshot snapshot(Timestamp now) const;

  [[nodiscard]] std::size_t metric_count() const;

 private:
  detail::CounterMetric& counter_metric(const std::string& name);
  detail::HistogramMetric& histogram_metric(const std::string& name);

  mutable std::mutex mu_;
  // unique_ptr elements: handles hold raw pointers, so storage must be
  // address-stable across later registrations.
  std::vector<std::unique_ptr<detail::CounterMetric>> counters_;
  std::vector<std::unique_ptr<detail::GaugeMetric>> gauges_;
  std::vector<std::unique_ptr<detail::HistogramMetric>> histograms_;
  std::vector<detail::CallbackCounter> counter_fns_;
  std::vector<detail::CallbackGauge> gauge_fns_;
};

}  // namespace ruru::obs
