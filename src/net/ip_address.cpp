#include "net/ip_address.hpp"

#include <cstdio>

#include "util/byte_order.hpp"

namespace ruru {

Result<Ipv4Address> Ipv4Address::parse(std::string_view text) {
  std::uint32_t octets[4];
  std::size_t pos = 0;
  for (int i = 0; i < 4; ++i) {
    if (pos >= text.size() || text[pos] < '0' || text[pos] > '9') {
      return make_error("ipv4: expected digit in '" + std::string(text) + "'");
    }
    std::uint32_t v = 0;
    int digits = 0;
    while (pos < text.size() && text[pos] >= '0' && text[pos] <= '9') {
      v = v * 10 + static_cast<std::uint32_t>(text[pos] - '0');
      ++pos;
      if (++digits > 3 || v > 255) {
        return make_error("ipv4: octet out of range in '" + std::string(text) + "'");
      }
    }
    octets[i] = v;
    if (i < 3) {
      if (pos >= text.size() || text[pos] != '.') {
        return make_error("ipv4: expected '.' in '" + std::string(text) + "'");
      }
      ++pos;
    }
  }
  if (pos != text.size()) {
    return make_error("ipv4: trailing characters in '" + std::string(text) + "'");
  }
  return Ipv4Address(static_cast<std::uint8_t>(octets[0]), static_cast<std::uint8_t>(octets[1]),
                     static_cast<std::uint8_t>(octets[2]), static_cast<std::uint8_t>(octets[3]));
}

std::string Ipv4Address::to_string() const {
  char buf[16];
  std::snprintf(buf, sizeof buf, "%u.%u.%u.%u", (value_ >> 24) & 0xff, (value_ >> 16) & 0xff,
                (value_ >> 8) & 0xff, value_ & 0xff);
  return buf;
}

namespace {

int hex_digit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

Result<Ipv6Address> Ipv6Address::parse(std::string_view text) {
  // Split on "::" (at most one), then parse colon-separated 16-bit groups.
  std::array<std::uint16_t, 8> groups{};
  const std::size_t gap = text.find("::");
  auto parse_groups = [](std::string_view part, std::uint16_t* out,
                         int max_groups) -> Result<int> {
    if (part.empty()) return 0;
    int n = 0;
    std::size_t pos = 0;
    while (true) {
      if (n >= max_groups) return make_error("ipv6: too many groups");
      std::uint32_t v = 0;
      int digits = 0;
      while (pos < part.size() && hex_digit(part[pos]) >= 0) {
        v = (v << 4) | static_cast<std::uint32_t>(hex_digit(part[pos]));
        ++pos;
        if (++digits > 4) return make_error("ipv6: group too long");
      }
      if (digits == 0) return make_error("ipv6: empty group");
      out[n++] = static_cast<std::uint16_t>(v);
      if (pos == part.size()) break;
      if (part[pos] != ':') return make_error("ipv6: expected ':'");
      ++pos;
    }
    return n;
  };

  std::array<std::uint16_t, 8> head{};
  std::array<std::uint16_t, 8> tail{};
  int head_n = 0;
  int tail_n = 0;
  if (gap == std::string_view::npos) {
    auto r = parse_groups(text, head.data(), 8);
    if (!r) return make_error(r.error());
    head_n = r.value();
    if (head_n != 8) return make_error("ipv6: need 8 groups without '::'");
  } else {
    if (text.find("::", gap + 1) != std::string_view::npos) {
      return make_error("ipv6: multiple '::'");
    }
    auto r1 = parse_groups(text.substr(0, gap), head.data(), 8);
    if (!r1) return make_error(r1.error());
    head_n = r1.value();
    auto r2 = parse_groups(text.substr(gap + 2), tail.data(), 8);
    if (!r2) return make_error(r2.error());
    tail_n = r2.value();
    if (head_n + tail_n >= 8) return make_error("ipv6: '::' must elide at least one group");
  }
  for (int i = 0; i < head_n; ++i) groups[static_cast<std::size_t>(i)] = head[static_cast<std::size_t>(i)];
  for (int i = 0; i < tail_n; ++i) {
    groups[static_cast<std::size_t>(8 - tail_n + i)] = tail[static_cast<std::size_t>(i)];
  }

  std::array<std::uint8_t, 16> bytes{};
  for (int i = 0; i < 8; ++i) {
    store_be16(&bytes[static_cast<std::size_t>(i) * 2], groups[static_cast<std::size_t>(i)]);
  }
  return Ipv6Address(bytes);
}

std::string Ipv6Address::to_string() const {
  // Canonical RFC 5952-ish: lowercase hex, longest zero run compressed.
  std::uint16_t groups[8];
  for (int i = 0; i < 8; ++i) groups[i] = load_be16(&bytes_[static_cast<std::size_t>(i) * 2]);

  int best_start = -1;
  int best_len = 0;
  for (int i = 0; i < 8;) {
    if (groups[i] != 0) {
      ++i;
      continue;
    }
    int j = i;
    while (j < 8 && groups[j] == 0) ++j;
    if (j - i > best_len) {
      best_len = j - i;
      best_start = i;
    }
    i = j;
  }
  if (best_len < 2) best_start = -1;  // only compress runs of >= 2

  std::string out;
  char buf[8];
  for (int i = 0; i < 8;) {
    if (i == best_start) {
      out.append("::");  // preceding group suppressed its ':' separator
      i += best_len;
      if (i >= 8) return out;
      continue;
    }
    std::snprintf(buf, sizeof buf, "%x", groups[i]);
    out.append(buf);
    if (++i < 8 && i != best_start) out.push_back(':');
  }
  return out;
}

}  // namespace ruru
