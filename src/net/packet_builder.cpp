#include "net/packet_builder.hpp"

#include <cassert>

#include "net/checksum.hpp"
#include "util/byte_order.hpp"

namespace ruru {

std::vector<std::uint8_t> build_tcp_frame(const TcpFrameSpec& spec) {
  assert(spec.src_ip.family == spec.dst_ip.family);

  TcpHeader tcp;
  tcp.src_port = spec.src_port;
  tcp.dst_port = spec.dst_port;
  tcp.seq = spec.seq;
  tcp.ack = spec.ack;
  tcp.flags = spec.flags;
  tcp.window = spec.window;
  if (spec.with_mss) {
    const bool ok = tcp.add_mss_option(spec.mss);
    assert(ok);
    (void)ok;
  }
  if (spec.with_timestamps) {
    const bool ok = tcp.add_timestamp_option(spec.ts_val, spec.ts_ecr);
    assert(ok);
    (void)ok;
  }

  const std::size_t tcp_len = tcp.header_length() + spec.payload_length;
  const std::size_t ip_header_len = spec.src_ip.is_v4() ? Ipv4Header::kMinSize : Ipv6Header::kSize;
  const std::size_t frame_len = EthernetHeader::kSize + ip_header_len + tcp_len;

  std::vector<std::uint8_t> frame(frame_len, 0);

  EthernetHeader eth;
  eth.src = spec.src_mac;
  eth.dst = spec.dst_mac;
  eth.ether_type = spec.src_ip.is_v4() ? kEtherTypeIpv4 : kEtherTypeIpv6;
  std::size_t off = eth.write(frame);

  if (spec.src_ip.is_v4()) {
    Ipv4Header ip;
    ip.total_length = static_cast<std::uint16_t>(ip_header_len + tcp_len);
    ip.identification = static_cast<std::uint16_t>(spec.seq & 0xffff);
    ip.flags_fragment = 0x4000;  // DF
    ip.ttl = spec.ttl;
    ip.protocol = kIpProtoTcp;
    ip.src = spec.src_ip.v4;
    ip.dst = spec.dst_ip.v4;
    off += ip.write(std::span(frame).subspan(off));
  } else {
    Ipv6Header ip;
    ip.payload_length = static_cast<std::uint16_t>(tcp_len);
    ip.next_header = kIpProtoTcp;
    ip.hop_limit = spec.ttl;
    ip.src = spec.src_ip.v6;
    ip.dst = spec.dst_ip.v6;
    off += ip.write(std::span(frame).subspan(off));
  }

  const std::size_t tcp_off = off;
  off += tcp.write(std::span(frame).subspan(off));

  // Deterministic payload pattern (never inspected, but stable for pcap
  // round-trip tests).
  for (std::size_t i = 0; i < spec.payload_length; ++i) {
    frame[off + i] = static_cast<std::uint8_t>((spec.seq + i) & 0xff);
  }

  if (spec.src_ip.is_v4()) {
    auto segment = std::span<const std::uint8_t>(frame).subspan(tcp_off, tcp_len);
    const std::uint16_t csum = tcp_checksum_v4(spec.src_ip.v4, spec.dst_ip.v4, segment);
    store_be16(&frame[tcp_off + 16], csum);
  }
  // (IPv6 TCP checksum omitted: the tap never validates it.)

  return frame;
}

std::vector<std::uint8_t> build_non_ip_frame(std::size_t length) {
  if (length < EthernetHeader::kSize) length = EthernetHeader::kSize;
  std::vector<std::uint8_t> frame(length, 0);
  EthernetHeader eth;
  eth.ether_type = 0x0806;  // ARP
  eth.write(frame);
  return frame;
}

std::vector<std::uint8_t> build_udp_frame(Ipv4Address src, Ipv4Address dst,
                                          std::uint16_t src_port, std::uint16_t dst_port,
                                          std::size_t payload_length) {
  const std::size_t udp_len = 8 + payload_length;
  const std::size_t frame_len = EthernetHeader::kSize + Ipv4Header::kMinSize + udp_len;
  std::vector<std::uint8_t> frame(frame_len, 0);

  EthernetHeader eth;
  eth.ether_type = kEtherTypeIpv4;
  std::size_t off = eth.write(frame);

  Ipv4Header ip;
  ip.total_length = static_cast<std::uint16_t>(Ipv4Header::kMinSize + udp_len);
  ip.protocol = kIpProtoUdp;
  ip.src = src;
  ip.dst = dst;
  off += ip.write(std::span(frame).subspan(off));

  store_be16(&frame[off], src_port);
  store_be16(&frame[off + 2], dst_port);
  store_be16(&frame[off + 4], static_cast<std::uint16_t>(udp_len));
  store_be16(&frame[off + 6], 0);  // checksum optional in IPv4
  return frame;
}

}  // namespace ruru
