#include "net/checksum.hpp"

#include "util/byte_order.hpp"

namespace ruru {

std::uint32_t checksum_partial(std::span<const std::uint8_t> data, std::uint32_t initial) {
  std::uint32_t sum = initial;
  std::size_t i = 0;
  for (; i + 1 < data.size(); i += 2) sum += load_be16(&data[i]);
  if (i < data.size()) sum += static_cast<std::uint32_t>(data[i]) << 8;  // odd trailing byte
  while (sum >> 16) sum = (sum & 0xffff) + (sum >> 16);
  return sum;
}

std::uint16_t internet_checksum(std::span<const std::uint8_t> data) {
  return static_cast<std::uint16_t>(~checksum_partial(data) & 0xffff);
}

std::uint16_t tcp_checksum_v4(Ipv4Address src, Ipv4Address dst,
                              std::span<const std::uint8_t> segment) {
  std::uint8_t pseudo[12];
  store_be32(&pseudo[0], src.value());
  store_be32(&pseudo[4], dst.value());
  pseudo[8] = 0;
  pseudo[9] = 6;  // IPPROTO_TCP
  store_be16(&pseudo[10], static_cast<std::uint16_t>(segment.size()));
  const std::uint32_t partial = checksum_partial(std::span<const std::uint8_t>(pseudo, 12));
  const std::uint32_t sum = checksum_partial(segment, partial);
  return static_cast<std::uint16_t>(~sum & 0xffff);
}

}  // namespace ruru
