#include "net/headers.hpp"

#include <algorithm>
#include <cstring>

#include "net/checksum.hpp"
#include "util/byte_order.hpp"

namespace ruru {

Result<EthernetHeader> EthernetHeader::parse(std::span<const std::uint8_t> data) {
  if (data.size() < kSize) return make_error("eth: frame shorter than 14 bytes");
  EthernetHeader h;
  std::copy_n(data.data(), 6, h.dst.begin());
  std::copy_n(data.data() + 6, 6, h.src.begin());
  h.ether_type = load_be16(&data[12]);
  return h;
}

std::size_t EthernetHeader::write(std::span<std::uint8_t> out) const {
  std::copy(dst.begin(), dst.end(), out.begin());
  std::copy(src.begin(), src.end(), out.begin() + 6);
  store_be16(&out[12], ether_type);
  return kSize;
}

Result<Ipv4Header> Ipv4Header::parse(std::span<const std::uint8_t> data) {
  if (data.size() < kMinSize) return make_error("ipv4: header shorter than 20 bytes");
  const std::uint8_t version = data[0] >> 4;
  if (version != 4) return make_error("ipv4: version field is not 4");
  Ipv4Header h;
  h.ihl = data[0] & 0x0f;
  if (h.ihl < 5) return make_error("ipv4: ihl < 5");
  if (data.size() < h.header_length()) return make_error("ipv4: truncated options");
  h.dscp_ecn = data[1];
  h.total_length = load_be16(&data[2]);
  if (h.total_length < h.header_length()) return make_error("ipv4: total_length < header");
  h.identification = load_be16(&data[4]);
  h.flags_fragment = load_be16(&data[6]);
  h.ttl = data[8];
  h.protocol = data[9];
  h.header_checksum = load_be16(&data[10]);
  h.src = Ipv4Address(load_be32(&data[12]));
  h.dst = Ipv4Address(load_be32(&data[16]));
  return h;
}

std::size_t Ipv4Header::write(std::span<std::uint8_t> out) const {
  const std::size_t len = header_length();
  std::fill_n(out.begin(), len, std::uint8_t{0});
  out[0] = static_cast<std::uint8_t>((4u << 4) | ihl);
  out[1] = dscp_ecn;
  store_be16(&out[2], total_length);
  store_be16(&out[4], identification);
  store_be16(&out[6], flags_fragment);
  out[8] = ttl;
  out[9] = protocol;
  store_be16(&out[10], 0);  // checksum computed below
  store_be32(&out[12], src.value());
  store_be32(&out[16], dst.value());
  const std::uint16_t csum = internet_checksum(std::span<const std::uint8_t>(out.data(), len));
  store_be16(&out[10], csum);
  return len;
}

Result<Ipv6Header> Ipv6Header::parse(std::span<const std::uint8_t> data) {
  if (data.size() < kSize) return make_error("ipv6: header shorter than 40 bytes");
  const std::uint8_t version = data[0] >> 4;
  if (version != 6) return make_error("ipv6: version field is not 6");
  Ipv6Header h;
  h.version_class_flow = load_be32(&data[0]);
  h.payload_length = load_be16(&data[4]);
  h.next_header = data[6];
  h.hop_limit = data[7];
  std::array<std::uint8_t, 16> src_bytes{};
  std::array<std::uint8_t, 16> dst_bytes{};
  std::copy_n(data.data() + 8, 16, src_bytes.begin());
  std::copy_n(data.data() + 24, 16, dst_bytes.begin());
  h.src = Ipv6Address(src_bytes);
  h.dst = Ipv6Address(dst_bytes);
  return h;
}

std::size_t Ipv6Header::write(std::span<std::uint8_t> out) const {
  store_be32(&out[0], version_class_flow);
  store_be16(&out[4], payload_length);
  out[6] = next_header;
  out[7] = hop_limit;
  std::copy(src.bytes().begin(), src.bytes().end(), out.begin() + 8);
  std::copy(dst.bytes().begin(), dst.bytes().end(), out.begin() + 24);
  return kSize;
}

Result<TcpHeader> TcpHeader::parse(std::span<const std::uint8_t> data) {
  if (data.size() < kMinSize) return make_error("tcp: header shorter than 20 bytes");
  TcpHeader h;
  h.src_port = load_be16(&data[0]);
  h.dst_port = load_be16(&data[2]);
  h.seq = load_be32(&data[4]);
  h.ack = load_be32(&data[8]);
  h.data_offset = data[12] >> 4;
  if (h.data_offset < 5) return make_error("tcp: data offset < 5");
  if (data.size() < h.header_length()) return make_error("tcp: truncated options");
  h.flags = data[13];
  h.window = load_be16(&data[14]);
  h.checksum = load_be16(&data[16]);
  h.urgent_pointer = load_be16(&data[18]);
  h.options_length = static_cast<std::uint8_t>(h.header_length() - kMinSize);
  std::copy_n(data.data() + kMinSize, h.options_length, h.options.begin());
  return h;
}

std::size_t TcpHeader::write(std::span<std::uint8_t> out) const {
  store_be16(&out[0], src_port);
  store_be16(&out[2], dst_port);
  store_be32(&out[4], seq);
  store_be32(&out[8], ack);
  out[12] = static_cast<std::uint8_t>(data_offset << 4);
  out[13] = flags;
  store_be16(&out[14], window);
  store_be16(&out[16], checksum);
  store_be16(&out[18], urgent_pointer);
  std::copy_n(options.begin(), options_length, out.begin() + kMinSize);
  // Pad to the 4-byte boundary implied by data_offset.
  const std::size_t len = header_length();
  for (std::size_t i = kMinSize + options_length; i < len; ++i) out[i] = 0;
  return len;
}

namespace {

/// Walks TCP option TLVs calling `fn(kind, len, value_ptr)`; stops on
/// malformed data or when fn returns true.
template <typename Fn>
void walk_options(const std::array<std::uint8_t, 40>& options, std::size_t n, Fn&& fn) {
  std::size_t i = 0;
  while (i < n) {
    const std::uint8_t kind = options[i];
    if (kind == 0) break;  // end of options
    if (kind == 1) {       // NOP
      ++i;
      continue;
    }
    if (i + 1 >= n) break;
    const std::uint8_t len = options[i + 1];
    if (len < 2 || i + len > n) break;  // malformed
    if (fn(kind, len, &options[i + 2])) return;
    i += len;
  }
}

}  // namespace

std::optional<TcpTimestampOption> TcpHeader::timestamp_option() const {
  std::optional<TcpTimestampOption> out;
  walk_options(options, options_length,
               [&](std::uint8_t kind, std::uint8_t len, const std::uint8_t* value) {
                 if (kind == 8 && len == 10) {
                   TcpTimestampOption ts;
                   ts.ts_val = load_be32(value);
                   ts.ts_ecr = load_be32(value + 4);
                   out = ts;
                   return true;
                 }
                 return false;
               });
  return out;
}

std::optional<std::uint16_t> TcpHeader::mss_option() const {
  std::optional<std::uint16_t> out;
  walk_options(options, options_length,
               [&](std::uint8_t kind, std::uint8_t len, const std::uint8_t* value) {
                 if (kind == 2 && len == 4) {
                   out = load_be16(value);
                   return true;
                 }
                 return false;
               });
  return out;
}

std::optional<std::uint8_t> TcpHeader::window_scale_option() const {
  std::optional<std::uint8_t> out;
  walk_options(options, options_length,
               [&](std::uint8_t kind, std::uint8_t len, const std::uint8_t* value) {
                 if (kind == 3 && len == 3) {
                   out = *value;
                   return true;
                 }
                 return false;
               });
  return out;
}

bool TcpHeader::sack_permitted() const {
  bool found = false;
  walk_options(options, options_length,
               [&](std::uint8_t kind, std::uint8_t len, const std::uint8_t*) {
                 if (kind == 4 && len == 2) {
                   found = true;
                   return true;
                 }
                 return false;
               });
  return found;
}

namespace {

/// Grows data_offset to cover `needed` option bytes (rounded up to a
/// 4-byte boundary). Returns false on overflow of the 40-byte space.
bool reserve_options(TcpHeader& h, std::size_t needed) {
  const std::size_t new_len = h.options_length + needed;
  if (new_len > h.options.size()) return false;
  const std::size_t padded = (new_len + 3) & ~std::size_t{3};
  const std::size_t new_offset = (TcpHeader::kMinSize + padded) / 4;
  if (new_offset > 15) return false;
  h.data_offset = static_cast<std::uint8_t>(new_offset);
  return true;
}

}  // namespace

bool TcpHeader::add_timestamp_option(std::uint32_t ts_val, std::uint32_t ts_ecr) {
  if (!reserve_options(*this, 12)) return false;
  std::uint8_t* p = options.data() + options_length;
  p[0] = 1;  // NOP
  p[1] = 1;  // NOP
  p[2] = 8;  // kind: timestamps
  p[3] = 10;
  store_be32(p + 4, ts_val);
  store_be32(p + 8, ts_ecr);
  options_length = static_cast<std::uint8_t>(options_length + 12);
  return true;
}

bool TcpHeader::add_mss_option(std::uint16_t mss) {
  if (!reserve_options(*this, 4)) return false;
  std::uint8_t* p = options.data() + options_length;
  p[0] = 2;  // kind: MSS
  p[1] = 4;
  store_be16(p + 2, mss);
  options_length = static_cast<std::uint8_t>(options_length + 4);
  return true;
}

bool TcpHeader::add_window_scale_option(std::uint8_t shift) {
  // NOP + kind 3 (len 3) keeps 4-byte alignment.
  if (!reserve_options(*this, 4)) return false;
  std::uint8_t* p = options.data() + options_length;
  p[0] = 1;  // NOP
  p[1] = 3;  // kind: window scale
  p[2] = 3;
  p[3] = shift;
  options_length = static_cast<std::uint8_t>(options_length + 4);
  return true;
}

bool TcpHeader::add_sack_permitted_option() {
  // NOP + NOP + kind 4 (len 2).
  if (!reserve_options(*this, 4)) return false;
  std::uint8_t* p = options.data() + options_length;
  p[0] = 1;
  p[1] = 1;
  p[2] = 4;  // kind: SACK permitted
  p[3] = 2;
  options_length = static_cast<std::uint8_t>(options_length + 4);
  return true;
}

}  // namespace ruru
