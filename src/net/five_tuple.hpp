#pragma once
// Flow identity: five-tuple and its canonical (direction-independent)
// form.  Ruru must see SYN, SYN-ACK and ACK of one handshake as a single
// flow even though they alternate direction, so the flow table keys on
// the canonical form and keeps a direction bit per packet.

#include <cstdint>
#include <functional>

#include "net/ip_address.hpp"

namespace ruru {

struct FiveTuple {
  IpAddress src;
  IpAddress dst;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint8_t protocol = 0;

  friend bool operator==(const FiveTuple& a, const FiveTuple& b) {
    return a.src == b.src && a.dst == b.dst && a.src_port == b.src_port &&
           a.dst_port == b.dst_port && a.protocol == b.protocol;
  }

  /// Reversed direction (dst -> src).
  [[nodiscard]] FiveTuple reversed() const {
    return FiveTuple{dst, src, dst_port, src_port, protocol};
  }
};

namespace detail {

inline std::uint64_t fnv1a(const std::uint8_t* data, std::size_t n,
                           std::uint64_t h = 0xcbf29ce484222325ULL) {
  for (std::size_t i = 0; i < n; ++i) {
    h ^= data[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

inline std::uint64_t hash_ip(const IpAddress& a, std::uint64_t h) {
  if (a.is_v4()) {
    const std::uint32_t v = a.v4.value();
    std::uint8_t bytes[4] = {static_cast<std::uint8_t>(v >> 24), static_cast<std::uint8_t>(v >> 16),
                             static_cast<std::uint8_t>(v >> 8), static_cast<std::uint8_t>(v)};
    return fnv1a(bytes, 4, h);
  }
  return fnv1a(a.v6.bytes().data(), 16, h);
}

}  // namespace detail

/// Direction-independent flow key: the (address,port) endpoint pairs are
/// ordered so that both directions of a connection hash and compare
/// identically.
struct FlowKey {
  FiveTuple canonical;   // endpoint-ordered tuple
  bool forward = true;   // true when the observed packet matched canonical order

  static FlowKey from(const FiveTuple& t) {
    FlowKey k;
    const bool keep = less_endpoint(t.src, t.src_port, t.dst, t.dst_port);
    k.canonical = keep ? t : t.reversed();
    k.forward = keep;
    return k;
  }

  friend bool operator==(const FlowKey& a, const FlowKey& b) {
    return a.canonical == b.canonical;
  }

  [[nodiscard]] std::uint64_t hash() const {
    std::uint64_t h = 0xcbf29ce484222325ULL;
    h = detail::hash_ip(canonical.src, h);
    h = detail::hash_ip(canonical.dst, h);
    const std::uint8_t ports[5] = {
        static_cast<std::uint8_t>(canonical.src_port >> 8),
        static_cast<std::uint8_t>(canonical.src_port),
        static_cast<std::uint8_t>(canonical.dst_port >> 8),
        static_cast<std::uint8_t>(canonical.dst_port), canonical.protocol};
    return detail::fnv1a(ports, 5, h);
  }

 private:
  static bool less_endpoint(const IpAddress& a, std::uint16_t ap, const IpAddress& b,
                            std::uint16_t bp) {
    if (a.is_v4() != b.is_v4()) return a.is_v4();
    if (a.is_v4()) {
      if (a.v4 != b.v4) return a.v4 < b.v4;
    } else {
      if (!(a.v6 == b.v6)) return a.v6 < b.v6;
    }
    return ap <= bp;
  }
};

}  // namespace ruru

template <>
struct std::hash<ruru::FlowKey> {
  std::size_t operator()(const ruru::FlowKey& k) const noexcept {
    return static_cast<std::size_t>(k.hash());
  }
};
