#pragma once
// Ethernet / IPv4 / IPv6 / TCP header codecs.
//
// Parsed-struct representation with explicit parse()/write() functions.
// Parsing is bounds-checked and never reads past the given span; writing
// returns the number of bytes emitted.  No struct overlays on buffers.

#include <array>
#include <cstdint>
#include <optional>
#include <span>

#include "net/ip_address.hpp"
#include "util/result.hpp"

namespace ruru {

using MacAddress = std::array<std::uint8_t, 6>;

inline constexpr std::uint16_t kEtherTypeIpv4 = 0x0800;
inline constexpr std::uint16_t kEtherTypeIpv6 = 0x86dd;
inline constexpr std::uint8_t kIpProtoTcp = 6;
inline constexpr std::uint8_t kIpProtoUdp = 17;

struct EthernetHeader {
  static constexpr std::size_t kSize = 14;

  MacAddress dst{};
  MacAddress src{};
  std::uint16_t ether_type = 0;

  static Result<EthernetHeader> parse(std::span<const std::uint8_t> data);
  /// Writes kSize bytes; `out.size()` must be >= kSize.
  std::size_t write(std::span<std::uint8_t> out) const;
};

struct Ipv4Header {
  static constexpr std::size_t kMinSize = 20;

  std::uint8_t ihl = 5;  // in 32-bit words
  std::uint8_t dscp_ecn = 0;
  std::uint16_t total_length = 0;
  std::uint16_t identification = 0;
  std::uint16_t flags_fragment = 0;  // 3-bit flags + 13-bit offset
  std::uint8_t ttl = 64;
  std::uint8_t protocol = 0;
  std::uint16_t header_checksum = 0;
  Ipv4Address src;
  Ipv4Address dst;

  [[nodiscard]] std::size_t header_length() const { return std::size_t{ihl} * 4; }
  [[nodiscard]] bool is_fragment() const {
    // More-Fragments flag set, or nonzero fragment offset.
    return (flags_fragment & 0x2000) != 0 || (flags_fragment & 0x1fff) != 0;
  }

  static Result<Ipv4Header> parse(std::span<const std::uint8_t> data);
  /// Writes the header (ihl*4 bytes, options zero-filled) and computes
  /// header_checksum into the buffer. Returns bytes written.
  std::size_t write(std::span<std::uint8_t> out) const;
};

struct Ipv6Header {
  static constexpr std::size_t kSize = 40;

  std::uint32_t version_class_flow = 6u << 28;
  std::uint16_t payload_length = 0;
  std::uint8_t next_header = 0;
  std::uint8_t hop_limit = 64;
  Ipv6Address src;
  Ipv6Address dst;

  static Result<Ipv6Header> parse(std::span<const std::uint8_t> data);
  std::size_t write(std::span<std::uint8_t> out) const;
};

/// TCP flag bits (RFC 9293 layout within the 13th/14th header bytes).
struct TcpFlags {
  static constexpr std::uint8_t kFin = 0x01;
  static constexpr std::uint8_t kSyn = 0x02;
  static constexpr std::uint8_t kRst = 0x04;
  static constexpr std::uint8_t kPsh = 0x08;
  static constexpr std::uint8_t kAck = 0x10;
  static constexpr std::uint8_t kUrg = 0x20;
};

/// Parsed TCP timestamp option (RFC 7323), the input pping-style
/// baselines match on.
struct TcpTimestampOption {
  std::uint32_t ts_val = 0;
  std::uint32_t ts_ecr = 0;
};

struct TcpHeader {
  static constexpr std::size_t kMinSize = 20;

  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint32_t seq = 0;
  std::uint32_t ack = 0;
  std::uint8_t data_offset = 5;  // in 32-bit words
  std::uint8_t flags = 0;
  std::uint16_t window = 0;
  std::uint16_t checksum = 0;
  std::uint16_t urgent_pointer = 0;
  /// Raw options bytes (copied out; <= 40 bytes).
  std::array<std::uint8_t, 40> options{};
  std::uint8_t options_length = 0;

  [[nodiscard]] std::size_t header_length() const { return std::size_t{data_offset} * 4; }

  [[nodiscard]] bool syn() const { return (flags & TcpFlags::kSyn) != 0; }
  [[nodiscard]] bool ack_flag() const { return (flags & TcpFlags::kAck) != 0; }
  [[nodiscard]] bool fin() const { return (flags & TcpFlags::kFin) != 0; }
  [[nodiscard]] bool rst() const { return (flags & TcpFlags::kRst) != 0; }
  [[nodiscard]] bool is_syn_only() const { return syn() && !ack_flag(); }
  [[nodiscard]] bool is_syn_ack() const { return syn() && ack_flag(); }

  /// Walks the options TLVs; returns the timestamp option if present and
  /// well-formed.
  [[nodiscard]] std::optional<TcpTimestampOption> timestamp_option() const;

  /// Appends a timestamp option (NOP,NOP,TS) to `options`; data_offset is
  /// updated. Returns false if options space would overflow.
  bool add_timestamp_option(std::uint32_t ts_val, std::uint32_t ts_ecr);
  /// Appends an MSS option. Returns false on overflow.
  bool add_mss_option(std::uint16_t mss);
  /// Appends a window-scale option (kind 3). Returns false on overflow.
  bool add_window_scale_option(std::uint8_t shift);
  /// Appends SACK-permitted (kind 4). Returns false on overflow.
  bool add_sack_permitted_option();

  /// Parsed MSS option value, if present.
  [[nodiscard]] std::optional<std::uint16_t> mss_option() const;
  /// Parsed window-scale shift, if present.
  [[nodiscard]] std::optional<std::uint8_t> window_scale_option() const;
  /// True when SACK-permitted is present.
  [[nodiscard]] bool sack_permitted() const;

  static Result<TcpHeader> parse(std::span<const std::uint8_t> data);
  /// Writes header_length() bytes; checksum written as-is (caller
  /// computes the pseudo-header checksum afterwards if desired).
  std::size_t write(std::span<std::uint8_t> out) const;
};

}  // namespace ruru
