#pragma once
// RFC 1071 internet checksum + TCP/IPv4 pseudo-header checksum.

#include <cstddef>
#include <cstdint>
#include <span>

#include "net/ip_address.hpp"

namespace ruru {

/// One's-complement sum of `data` folded to 16 bits (not inverted).
[[nodiscard]] std::uint32_t checksum_partial(std::span<const std::uint8_t> data,
                                             std::uint32_t initial = 0);

/// Final RFC 1071 checksum over `data` (inverted, ready for the wire).
[[nodiscard]] std::uint16_t internet_checksum(std::span<const std::uint8_t> data);

/// TCP checksum over the IPv4 pseudo-header + segment (header+payload).
/// `segment` must have its checksum field zeroed by the caller.
[[nodiscard]] std::uint16_t tcp_checksum_v4(Ipv4Address src, Ipv4Address dst,
                                            std::span<const std::uint8_t> segment);

}  // namespace ruru
