#include "net/packet_view.hpp"

#include <algorithm>

#include "util/byte_order.hpp"

namespace ruru {

const char* to_string(ParseStatus s) {
  switch (s) {
    case ParseStatus::kOk: return "ok";
    case ParseStatus::kNotIp: return "not-ip";
    case ParseStatus::kNotTcp: return "not-tcp";
    case ParseStatus::kFragment: return "fragment";
    case ParseStatus::kMalformed: return "malformed";
  }
  return "?";
}

ParseStatus parse_packet(std::span<const std::uint8_t> frame, PacketView& out) {
  out.frame_length = frame.size();
  auto eth = EthernetHeader::parse(frame);
  if (!eth) return ParseStatus::kMalformed;
  out.eth = eth.value();

  auto l3 = frame.subspan(EthernetHeader::kSize);
  std::size_t l4_offset = 0;
  std::size_t l4_available = 0;

  if (out.eth.ether_type == kEtherTypeIpv4) {
    auto ip = Ipv4Header::parse(l3);
    if (!ip) return ParseStatus::kMalformed;
    out.ip4 = ip.value();
    out.is_v4 = true;
    if (out.ip4.protocol != kIpProtoTcp) return ParseStatus::kNotTcp;
    // Only the first fragment carries the TCP header; later fragments
    // cannot contribute handshake timestamps.
    if ((out.ip4.flags_fragment & 0x1fff) != 0) return ParseStatus::kFragment;
    l4_offset = out.ip4.header_length();
    if (out.ip4.total_length > l3.size()) return ParseStatus::kMalformed;
    l4_available = out.ip4.total_length - l4_offset;
  } else if (out.eth.ether_type == kEtherTypeIpv6) {
    auto ip = Ipv6Header::parse(l3);
    if (!ip) return ParseStatus::kMalformed;
    out.ip6 = ip.value();
    out.is_v4 = false;
    // No extension-header walking: Ruru's tap cares about plain TCP.
    if (out.ip6.next_header != kIpProtoTcp) return ParseStatus::kNotTcp;
    l4_offset = Ipv6Header::kSize;
    if (std::size_t{out.ip6.payload_length} + Ipv6Header::kSize > l3.size()) {
      return ParseStatus::kMalformed;
    }
    l4_available = out.ip6.payload_length;
  } else {
    return ParseStatus::kNotIp;
  }

  auto l4 = l3.subspan(l4_offset, l4_available);
  auto tcp = TcpHeader::parse(l4);
  if (!tcp) return ParseStatus::kMalformed;
  out.tcp = tcp.value();
  if (out.tcp.header_length() > l4.size()) return ParseStatus::kMalformed;
  out.payload_length = l4.size() - out.tcp.header_length();
  return ParseStatus::kOk;
}

FastProbe probe_tcp_fast(std::span<const std::uint8_t> frame) {
  FastProbe p;
  if (frame.size() < EthernetHeader::kSize + Ipv4Header::kMinSize) return p;
  const std::uint16_t ether_type = load_be16(&frame[kEtherTypeOffset]);

  if (ether_type == kEtherTypeIpv4) {
    if ((frame[kIpv4Offset] >> 4) != 4) return p;
    const std::uint8_t ihl = frame[kIpv4Offset] & 0x0f;
    if (ihl < 5) return p;
    if (frame[kIpv4ProtocolOffset] != kIpProtoTcp) return p;
    // Any fragment (offset or more-fragments) takes the slow path: a
    // non-first fragment has no TCP header at the fixed offset.
    if ((load_be16(&frame[kIpv4FragmentOffset]) & 0x3fff) != 0) return p;
    const std::size_t l4 = kIpv4Offset + std::size_t{ihl} * 4;
    if (frame.size() < l4 + kTcpMinHeader) return p;
    p.tuple.src = Ipv4Address(load_be32(&frame[kIpv4SrcOffset]));
    p.tuple.dst = Ipv4Address(load_be32(&frame[kIpv4DstOffset]));
    p.tuple.src_port = load_be16(&frame[l4]);
    p.tuple.dst_port = load_be16(&frame[l4 + 2]);
    p.tuple.protocol = kIpProtoTcp;
    p.tcp_flags = frame[l4 + kTcpFlagsOffset];
    p.is_v4 = true;
    p.l4_offset = static_cast<std::uint16_t>(l4);
    p.eligible = true;
    return p;
  }

  if (ether_type == kEtherTypeIpv6) {
    if (frame.size() < kIpv6L4Offset + kTcpMinHeader) return p;
    if ((frame[kIpv4Offset] >> 4) != 6) return p;
    if (frame[kIpv6NextHeaderOffset] != kIpProtoTcp) return p;
    std::array<std::uint8_t, 16> src{};
    std::array<std::uint8_t, 16> dst{};
    std::copy_n(&frame[kIpv6SrcOffset], 16, src.begin());
    std::copy_n(&frame[kIpv6DstOffset], 16, dst.begin());
    p.tuple.src = Ipv6Address(src);
    p.tuple.dst = Ipv6Address(dst);
    p.tuple.src_port = load_be16(&frame[kIpv6L4Offset]);
    p.tuple.dst_port = load_be16(&frame[kIpv6L4Offset + 2]);
    p.tuple.protocol = kIpProtoTcp;
    p.tcp_flags = frame[kIpv6L4Offset + kTcpFlagsOffset];
    p.is_v4 = false;
    p.l4_offset = kIpv6L4Offset;
    p.eligible = true;
    return p;
  }

  return p;
}

std::size_t probe_tcp_fast_batch(const std::span<const std::uint8_t>* frames, std::size_t n,
                                 FastProbe* out) {
  // No frame prefetch here: the worker's ingest stage already issued
  // the head-of-frame lines for the whole burst a stage earlier, which
  // is strictly more lookahead than a one-frame peek from inside this
  // loop could give.
  std::size_t eligible = 0;
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = probe_tcp_fast(frames[i]);
    eligible += out[i].eligible ? 1 : 0;
  }
  return eligible;
}

FastTsProbe probe_tcp_timestamps(std::span<const std::uint8_t> frame, std::size_t l4_offset,
                                 bool is_v4) {
  FastTsProbe r;
  // probe_tcp_fast already bounded frame >= l4_offset + 20.
  const std::size_t doff_words = frame[l4_offset + 12] >> 4;
  if (doff_words < 5) return r;
  const std::size_t tcp_len = doff_words * 4;

  // Length validation mirroring parse_packet(): the IP length field must
  // fit the frame and cover the TCP header; what it covers beyond the
  // header is the payload.  Trailing frame bytes past the IP length are
  // Ethernet padding, never options or payload.
  std::size_t l4_available = 0;
  if (is_v4) {
    const std::size_t total_length = load_be16(&frame[kIpv4Offset + 2]);
    const std::size_t ip_header = l4_offset - kIpv4Offset;
    if (total_length + kIpv4Offset > frame.size()) return r;
    if (total_length < ip_header + tcp_len) return r;
    l4_available = total_length - ip_header;
  } else {
    const std::size_t payload_length = load_be16(&frame[kIpv4Offset + 4]);
    if (payload_length + kIpv6L4Offset > frame.size()) return r;
    if (payload_length < tcp_len) return r;
    l4_available = payload_length;
  }
  r.payload_len = static_cast<std::uint16_t>(l4_available - tcp_len);
  r.valid = true;

  const std::uint8_t* opt = &frame[l4_offset + kTcpMinHeader];
  const std::size_t opt_len = tcp_len - kTcpMinHeader;
  // Kernel-standard layout first: NOP NOP TS(10) resolves without a walk.
  if (opt_len >= 12 && opt[0] == 1 && opt[1] == 1 && opt[2] == 8 && opt[3] == 10) {
    r.has_ts = true;
    r.ts_val = load_be32(opt + 4);
    r.ts_ecr = load_be32(opt + 8);
    return r;
  }
  // General TLV walk, same accept/stop rules as TcpHeader::timestamp_option.
  std::size_t i = 0;
  while (i < opt_len) {
    const std::uint8_t kind = opt[i];
    if (kind == 0) break;  // end of options
    if (kind == 1) {       // NOP
      ++i;
      continue;
    }
    if (i + 1 >= opt_len) break;
    const std::uint8_t len = opt[i + 1];
    if (len < 2 || i + len > opt_len) break;  // malformed
    if (kind == 8 && len == 10) {
      r.has_ts = true;
      r.ts_val = load_be32(&opt[i + 2]);
      r.ts_ecr = load_be32(&opt[i + 6]);
      break;
    }
    i += len;
  }
  return r;
}

}  // namespace ruru
