#include "net/packet_view.hpp"

namespace ruru {

const char* to_string(ParseStatus s) {
  switch (s) {
    case ParseStatus::kOk: return "ok";
    case ParseStatus::kNotIp: return "not-ip";
    case ParseStatus::kNotTcp: return "not-tcp";
    case ParseStatus::kFragment: return "fragment";
    case ParseStatus::kMalformed: return "malformed";
  }
  return "?";
}

ParseStatus parse_packet(std::span<const std::uint8_t> frame, PacketView& out) {
  out.frame_length = frame.size();
  auto eth = EthernetHeader::parse(frame);
  if (!eth) return ParseStatus::kMalformed;
  out.eth = eth.value();

  auto l3 = frame.subspan(EthernetHeader::kSize);
  std::size_t l4_offset = 0;
  std::size_t l4_available = 0;

  if (out.eth.ether_type == kEtherTypeIpv4) {
    auto ip = Ipv4Header::parse(l3);
    if (!ip) return ParseStatus::kMalformed;
    out.ip4 = ip.value();
    out.is_v4 = true;
    if (out.ip4.protocol != kIpProtoTcp) return ParseStatus::kNotTcp;
    // Only the first fragment carries the TCP header; later fragments
    // cannot contribute handshake timestamps.
    if ((out.ip4.flags_fragment & 0x1fff) != 0) return ParseStatus::kFragment;
    l4_offset = out.ip4.header_length();
    if (out.ip4.total_length > l3.size()) return ParseStatus::kMalformed;
    l4_available = out.ip4.total_length - l4_offset;
  } else if (out.eth.ether_type == kEtherTypeIpv6) {
    auto ip = Ipv6Header::parse(l3);
    if (!ip) return ParseStatus::kMalformed;
    out.ip6 = ip.value();
    out.is_v4 = false;
    // No extension-header walking: Ruru's tap cares about plain TCP.
    if (out.ip6.next_header != kIpProtoTcp) return ParseStatus::kNotTcp;
    l4_offset = Ipv6Header::kSize;
    if (std::size_t{out.ip6.payload_length} + Ipv6Header::kSize > l3.size()) {
      return ParseStatus::kMalformed;
    }
    l4_available = out.ip6.payload_length;
  } else {
    return ParseStatus::kNotIp;
  }

  auto l4 = l3.subspan(l4_offset, l4_available);
  auto tcp = TcpHeader::parse(l4);
  if (!tcp) return ParseStatus::kMalformed;
  out.tcp = tcp.value();
  if (out.tcp.header_length() > l4.size()) return ParseStatus::kMalformed;
  out.payload_length = l4.size() - out.tcp.header_length();
  return ParseStatus::kOk;
}

}  // namespace ruru
