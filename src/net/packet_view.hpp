#pragma once
// Single-pass pre-parser for captured frames.
//
// This is the "pre-parsing all TCP packet headers" stage of the Ruru
// pipeline (Figure 2): given a raw Ethernet frame it classifies the
// packet and, for TCP, exposes the parsed headers and flow tuple without
// copying the frame.

#include <cstdint>
#include <span>

#include "net/five_tuple.hpp"
#include "net/headers.hpp"

namespace ruru {

enum class ParseStatus : std::uint8_t {
  kOk = 0,      // TCP/IPv4 or TCP/IPv6, headers valid
  kNotIp,       // non-IP ethertype (ARP, LLDP, ...)
  kNotTcp,      // IP but not TCP (UDP, ICMP, ...)
  kFragment,    // non-first IP fragment: TCP header not present
  kMalformed,   // truncated or inconsistent headers
};

[[nodiscard]] const char* to_string(ParseStatus s);

struct PacketView {
  EthernetHeader eth;
  bool is_v4 = true;
  Ipv4Header ip4;
  Ipv6Header ip6;
  TcpHeader tcp;
  std::size_t payload_length = 0;  // TCP payload bytes present in the frame
  std::size_t frame_length = 0;

  [[nodiscard]] FiveTuple tuple() const {
    FiveTuple t;
    if (is_v4) {
      t.src = ip4.src;
      t.dst = ip4.dst;
    } else {
      t.src = ip6.src;
      t.dst = ip6.dst;
    }
    t.src_port = tcp.src_port;
    t.dst_port = tcp.dst_port;
    t.protocol = kIpProtoTcp;
    return t;
  }
};

/// Parses `frame` (Ethernet II). On kOk, `out` is fully populated; on any
/// other status `out` is unspecified.
[[nodiscard]] ParseStatus parse_packet(std::span<const std::uint8_t> frame, PacketView& out);

// --- fixed-offset fast probe -------------------------------------------
//
// Named offsets of the fields the capture fast path reads directly from
// the frame (all relative to the start of the Ethernet frame, except the
// L4 ones which float with the IPv4 IHL).

inline constexpr std::size_t kEtherTypeOffset = 12;      ///< 2 bytes, big-endian
inline constexpr std::size_t kIpv4Offset = 14;           ///< start of the IPv4 header
inline constexpr std::size_t kIpv4FragmentOffset = 14 + 6;   ///< flags+fragment, 2 bytes
inline constexpr std::size_t kIpv4ProtocolOffset = 14 + 9;   ///< protocol byte
inline constexpr std::size_t kIpv4SrcOffset = 14 + 12;       ///< src address, 4 bytes
inline constexpr std::size_t kIpv4DstOffset = 14 + 16;       ///< dst address, 4 bytes
inline constexpr std::size_t kIpv6NextHeaderOffset = 14 + 6; ///< next-header byte
inline constexpr std::size_t kIpv6SrcOffset = 14 + 8;        ///< src address, 16 bytes
inline constexpr std::size_t kIpv6DstOffset = 14 + 24;       ///< dst address, 16 bytes
inline constexpr std::size_t kIpv6L4Offset = 14 + 40;        ///< TCP header (no ext hdrs)
inline constexpr std::size_t kTcpFlagsOffset = 13;           ///< within the TCP header
inline constexpr std::size_t kTcpMinHeader = 20;

/// Result of probe_tcp_fast(): just enough of the packet — the TCP flags
/// byte and the flow 4-tuple — to decide whether a full parse_packet()
/// is needed, read at fixed offsets without touching options, lengths or
/// checksums.
struct FastProbe {
  /// True when the frame is plain, non-fragment TCP/IPv4 or TCP/IPv6
  /// with the fixed-offset fields in bounds. False means "take the slow
  /// path": parse_packet() will classify (and count) the packet.
  bool eligible = false;
  std::uint8_t tcp_flags = 0;
  FiveTuple tuple;  ///< populated only when eligible
};

/// Fixed-offset L2/L3/L4 probe — the pre-parse stage of the capture fast
/// path. Reads the ethertype, IP protocol/next-header, addresses, ports
/// and TCP flags byte at their fixed positions (IHL-adjusted for IPv4).
/// Deliberately skips the validation parse_packet() performs
/// (total_length consistency, data_offset bounds): the caller only uses
/// the result to SKIP packets, never to measure them.
[[nodiscard]] FastProbe probe_tcp_fast(std::span<const std::uint8_t> frame);

}  // namespace ruru
