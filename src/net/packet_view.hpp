#pragma once
// Single-pass pre-parser for captured frames.
//
// This is the "pre-parsing all TCP packet headers" stage of the Ruru
// pipeline (Figure 2): given a raw Ethernet frame it classifies the
// packet and, for TCP, exposes the parsed headers and flow tuple without
// copying the frame.

#include <cstdint>
#include <span>

#include "net/five_tuple.hpp"
#include "net/headers.hpp"

namespace ruru {

enum class ParseStatus : std::uint8_t {
  kOk = 0,      // TCP/IPv4 or TCP/IPv6, headers valid
  kNotIp,       // non-IP ethertype (ARP, LLDP, ...)
  kNotTcp,      // IP but not TCP (UDP, ICMP, ...)
  kFragment,    // non-first IP fragment: TCP header not present
  kMalformed,   // truncated or inconsistent headers
};

[[nodiscard]] const char* to_string(ParseStatus s);

struct PacketView {
  EthernetHeader eth;
  bool is_v4 = true;
  Ipv4Header ip4;
  Ipv6Header ip6;
  TcpHeader tcp;
  std::size_t payload_length = 0;  // TCP payload bytes present in the frame
  std::size_t frame_length = 0;

  [[nodiscard]] FiveTuple tuple() const {
    FiveTuple t;
    if (is_v4) {
      t.src = ip4.src;
      t.dst = ip4.dst;
    } else {
      t.src = ip6.src;
      t.dst = ip6.dst;
    }
    t.src_port = tcp.src_port;
    t.dst_port = tcp.dst_port;
    t.protocol = kIpProtoTcp;
    return t;
  }
};

/// Parses `frame` (Ethernet II). On kOk, `out` is fully populated; on any
/// other status `out` is unspecified.
[[nodiscard]] ParseStatus parse_packet(std::span<const std::uint8_t> frame, PacketView& out);

// --- fixed-offset fast probe -------------------------------------------
//
// Named offsets of the fields the capture fast path reads directly from
// the frame (all relative to the start of the Ethernet frame, except the
// L4 ones which float with the IPv4 IHL).

inline constexpr std::size_t kEtherTypeOffset = 12;      ///< 2 bytes, big-endian
inline constexpr std::size_t kIpv4Offset = 14;           ///< start of the IPv4 header
inline constexpr std::size_t kIpv4FragmentOffset = 14 + 6;   ///< flags+fragment, 2 bytes
inline constexpr std::size_t kIpv4ProtocolOffset = 14 + 9;   ///< protocol byte
inline constexpr std::size_t kIpv4SrcOffset = 14 + 12;       ///< src address, 4 bytes
inline constexpr std::size_t kIpv4DstOffset = 14 + 16;       ///< dst address, 4 bytes
inline constexpr std::size_t kIpv6NextHeaderOffset = 14 + 6; ///< next-header byte
inline constexpr std::size_t kIpv6SrcOffset = 14 + 8;        ///< src address, 16 bytes
inline constexpr std::size_t kIpv6DstOffset = 14 + 24;       ///< dst address, 16 bytes
inline constexpr std::size_t kIpv6L4Offset = 14 + 40;        ///< TCP header (no ext hdrs)
inline constexpr std::size_t kTcpFlagsOffset = 13;           ///< within the TCP header
inline constexpr std::size_t kTcpMinHeader = 20;

/// Result of probe_tcp_fast(): just enough of the packet — the TCP flags
/// byte and the flow 4-tuple — to decide whether a full parse_packet()
/// is needed, read at fixed offsets without touching options, lengths or
/// checksums.
struct FastProbe {
  /// True when the frame is plain, non-fragment TCP/IPv4 or TCP/IPv6
  /// with the fixed-offset fields in bounds. False means "take the slow
  /// path": parse_packet() will classify (and count) the packet.
  bool eligible = false;
  std::uint8_t tcp_flags = 0;
  bool is_v4 = true;            ///< valid only when eligible
  std::uint16_t l4_offset = 0;  ///< TCP header offset in the frame (eligible only)
  FiveTuple tuple;              ///< populated only when eligible
};

/// Fixed-offset L2/L3/L4 probe — the pre-parse stage of the capture fast
/// path. Reads the ethertype, IP protocol/next-header, addresses, ports
/// and TCP flags byte at their fixed positions (IHL-adjusted for IPv4).
/// Deliberately skips the validation parse_packet() performs
/// (total_length consistency, data_offset bounds): the caller only uses
/// the result to SKIP packets, never to measure them.
[[nodiscard]] FastProbe probe_tcp_fast(std::span<const std::uint8_t> frame);

/// Batched probe_tcp_fast over `n` frames: probes each frame while the
/// next frame's header bytes stream in behind a prefetch, filling
/// `out[0..n)`.  Results are identical to calling probe_tcp_fast per
/// frame; returns the number of eligible frames.
std::size_t probe_tcp_fast_batch(const std::span<const std::uint8_t>* frames, std::size_t n,
                                 FastProbe* out);

/// Result of probe_tcp_timestamps(): the RFC 7323 timestamp option and
/// the payload length, read in place for the in-flow RTT kernel.
struct FastTsProbe {
  /// True when the length fields are self-consistent (the same checks
  /// parse_packet() applies to total_length / payload_length /
  /// data-offset).  False means "take the slow path" — unlike the flags
  /// probe this one feeds *measurements*, so it refuses frames a full
  /// parse would reject rather than risk reading padding as options.
  bool valid = false;
  bool has_ts = false;  ///< a well-formed timestamp option was present
  std::uint32_t ts_val = 0;
  std::uint32_t ts_ecr = 0;
  std::uint16_t payload_len = 0;
};

/// Second-stage fixed-offset probe for frames probe_tcp_fast() accepted:
/// validates the length fields and extracts TSval/TSecr + payload length
/// without building a PacketView.  `l4_offset`/`is_v4` come from the
/// FastProbe.  The common kernel layout (NOP NOP TS) resolves with one
/// 4-byte compare; anything else falls back to a bounded TLV walk with
/// the same accept rule as TcpHeader::timestamp_option (kind 8, len 10).
[[nodiscard]] FastTsProbe probe_tcp_timestamps(std::span<const std::uint8_t> frame,
                                               std::size_t l4_offset, bool is_v4);

}  // namespace ruru
