#pragma once
// Single-pass pre-parser for captured frames.
//
// This is the "pre-parsing all TCP packet headers" stage of the Ruru
// pipeline (Figure 2): given a raw Ethernet frame it classifies the
// packet and, for TCP, exposes the parsed headers and flow tuple without
// copying the frame.

#include <cstdint>
#include <span>

#include "net/five_tuple.hpp"
#include "net/headers.hpp"

namespace ruru {

enum class ParseStatus : std::uint8_t {
  kOk = 0,      // TCP/IPv4 or TCP/IPv6, headers valid
  kNotIp,       // non-IP ethertype (ARP, LLDP, ...)
  kNotTcp,      // IP but not TCP (UDP, ICMP, ...)
  kFragment,    // non-first IP fragment: TCP header not present
  kMalformed,   // truncated or inconsistent headers
};

[[nodiscard]] const char* to_string(ParseStatus s);

struct PacketView {
  EthernetHeader eth;
  bool is_v4 = true;
  Ipv4Header ip4;
  Ipv6Header ip6;
  TcpHeader tcp;
  std::size_t payload_length = 0;  // TCP payload bytes present in the frame
  std::size_t frame_length = 0;

  [[nodiscard]] FiveTuple tuple() const {
    FiveTuple t;
    if (is_v4) {
      t.src = ip4.src;
      t.dst = ip4.dst;
    } else {
      t.src = ip6.src;
      t.dst = ip6.dst;
    }
    t.src_port = tcp.src_port;
    t.dst_port = tcp.dst_port;
    t.protocol = kIpProtoTcp;
    return t;
  }
};

/// Parses `frame` (Ethernet II). On kOk, `out` is fully populated; on any
/// other status `out` is unspecified.
[[nodiscard]] ParseStatus parse_packet(std::span<const std::uint8_t> frame, PacketView& out);

}  // namespace ruru
