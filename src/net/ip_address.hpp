#pragma once
// IPv4 / IPv6 address value types.
//
// IPv4 addresses are stored in host order internally (arithmetic-friendly
// for the geo range DB); all wire I/O goes through byte_order helpers.

#include <array>
#include <compare>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "util/result.hpp"

namespace ruru {

class Ipv4Address {
 public:
  constexpr Ipv4Address() = default;
  /// From host-order integer, e.g. 0x0A000001 == 10.0.0.1.
  constexpr explicit Ipv4Address(std::uint32_t host_order) : value_(host_order) {}
  /// From dotted octets: Ipv4Address(10, 0, 0, 1).
  constexpr Ipv4Address(std::uint8_t a, std::uint8_t b, std::uint8_t c, std::uint8_t d)
      : value_((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
               (std::uint32_t{c} << 8) | std::uint32_t{d}) {}

  [[nodiscard]] constexpr std::uint32_t value() const { return value_; }

  friend constexpr auto operator<=>(Ipv4Address, Ipv4Address) = default;

  /// Parses dotted-quad text ("203.0.113.7").
  static Result<Ipv4Address> parse(std::string_view text);

  [[nodiscard]] std::string to_string() const;

  /// True when inside `prefix`/`prefix_len` (CIDR containment).
  [[nodiscard]] constexpr bool in_prefix(Ipv4Address prefix, int prefix_len) const {
    if (prefix_len <= 0) return true;
    if (prefix_len >= 32) return value_ == prefix.value_;
    const std::uint32_t mask = ~std::uint32_t{0} << (32 - prefix_len);
    return (value_ & mask) == (prefix.value_ & mask);
  }

 private:
  std::uint32_t value_ = 0;
};

class Ipv6Address {
 public:
  constexpr Ipv6Address() = default;
  explicit Ipv6Address(const std::array<std::uint8_t, 16>& bytes) : bytes_(bytes) {}

  [[nodiscard]] const std::array<std::uint8_t, 16>& bytes() const { return bytes_; }

  friend auto operator<=>(const Ipv6Address&, const Ipv6Address&) = default;

  /// Parses full or `::`-compressed hex groups (no embedded IPv4 form).
  static Result<Ipv6Address> parse(std::string_view text);

  [[nodiscard]] std::string to_string() const;

 private:
  std::array<std::uint8_t, 16> bytes_{};
};

/// Either address family; tagged rather than std::variant so the hot
/// path can branch on `family` without visitation overhead.
struct IpAddress {
  enum class Family : std::uint8_t { kV4, kV6 };
  Family family = Family::kV4;
  Ipv4Address v4;
  Ipv6Address v6;

  IpAddress() = default;
  IpAddress(Ipv4Address a) : family(Family::kV4), v4(a) {}  // NOLINT implicit
  IpAddress(Ipv6Address a) : family(Family::kV6), v6(a) {}  // NOLINT implicit

  [[nodiscard]] bool is_v4() const { return family == Family::kV4; }
  [[nodiscard]] std::string to_string() const {
    return is_v4() ? v4.to_string() : v6.to_string();
  }

  friend bool operator==(const IpAddress& a, const IpAddress& b) {
    if (a.family != b.family) return false;
    return a.is_v4() ? a.v4 == b.v4 : a.v6 == b.v6;
  }
};

}  // namespace ruru

template <>
struct std::hash<ruru::Ipv4Address> {
  std::size_t operator()(ruru::Ipv4Address a) const noexcept {
    return std::hash<std::uint32_t>{}(a.value());
  }
};
