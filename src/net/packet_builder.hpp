#pragma once
// Synthetic TCP frame construction (traffic generator + tests).
//
// Builds complete Ethernet/IPv4(or v6)/TCP frames with correct lengths
// and checksums.  Payload bytes are a deterministic pattern; the pipeline
// never inspects payload, only lengths.

#include <cstdint>
#include <vector>

#include "net/headers.hpp"

namespace ruru {

struct TcpFrameSpec {
  MacAddress src_mac{{0x02, 0, 0, 0, 0, 0x01}};
  MacAddress dst_mac{{0x02, 0, 0, 0, 0, 0x02}};
  IpAddress src_ip;
  IpAddress dst_ip;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint32_t seq = 0;
  std::uint32_t ack = 0;
  std::uint8_t flags = 0;
  std::uint16_t window = 65535;
  std::uint8_t ttl = 64;
  std::size_t payload_length = 0;
  /// When true, a TCP timestamp option is attached (value/echo below).
  bool with_timestamps = false;
  std::uint32_t ts_val = 0;
  std::uint32_t ts_ecr = 0;
  /// When true (SYN segments), an MSS option is attached.
  bool with_mss = false;
  std::uint16_t mss = 1460;

  /// Both IP addresses must share one family; asserted in build.
};

/// Builds the full frame. Checksums (IPv4 header + TCP) are valid.
[[nodiscard]] std::vector<std::uint8_t> build_tcp_frame(const TcpFrameSpec& spec);

/// Convenience: minimal non-IP frame (e.g. ARP-ish) for negative tests.
[[nodiscard]] std::vector<std::uint8_t> build_non_ip_frame(std::size_t length = 64);

/// Convenience: UDP/IPv4 frame (pipeline must classify as kNotTcp).
[[nodiscard]] std::vector<std::uint8_t> build_udp_frame(Ipv4Address src, Ipv4Address dst,
                                                        std::uint16_t src_port,
                                                        std::uint16_t dst_port,
                                                        std::size_t payload_length);

}  // namespace ruru
