#pragma once
// In-process topic pub/sub with high-water-mark drop semantics.
//
// Mirrors ZeroMQ PUB/SUB behaviour the pipeline relies on:
//  * a publisher never blocks — a subscriber whose queue is at its HWM
//    loses the message (the tap must not backpressure the capture path);
//  * subscription is by topic prefix;
//  * delivery is per-subscriber FIFO (per publisher lane, see below).
//
// The publish path is lock-free end to end: the subscriber list is an
// immutable atomic snapshot (copy-on-subscribe, never copy-on-publish),
// per-subscription queues are lock-free rings (BusQueue) and all
// counters are atomics.  Under HwmPolicy::kDrop a publish acquires no
// mutex regardless of subscriber count or contention.
//
// Fan-in lanes: with N worker lcores all flushing latency batches into
// one subscriber, a single MPMC ring makes every worker CAS-contend on
// one ticket cursor.  A PubSocket constructed with `fanin_lanes = N`
// gives every subscription N per-lane queues plus one shared queue;
// worker w publishes via publish_lane(w, ...) and is the ONLY producer
// on lane w's ring, so its ticket CAS never loses — fan-in scales with
// worker count instead of serialising on one cursor.  Consumers
// round-robin the lanes (fair, MPMC-safe for a consumer pool), which
// preserves per-worker FIFO ordering; cross-lane order is unspecified,
// exactly like N ZeroMQ publishers into one SUB.  publish() (alerts,
// control-plane traffic) uses the shared queue and needs no lane.
//
// Counters are denominated in *samples*, not messages: publish() takes
// the number of samples the message carries (a batched latency frame
// carries many), so delivered/dropped/published stay truthful when the
// feed batches and an HWM drop loses a whole batch.

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "msg/bus_queue.hpp"
#include "msg/message.hpp"

namespace ruru {

/// What happens when a subscriber's queue is at its high-water mark.
enum class HwmPolicy {
  kDrop,   ///< lose the message (ZeroMQ PUB behaviour; pipeline default)
  kBlock,  ///< block the publisher (ablation: shows why taps must not)
};

class Subscription {
 public:
  /// `lanes` per-publisher-lane queues are created in addition to the
  /// shared queue; each gets the full `hwm` (the HWM bounds per-worker
  /// backlog, so one stalled consumer loses batches lane by lane).
  Subscription(std::string topic_prefix, std::size_t hwm, HwmPolicy policy = HwmPolicy::kDrop,
               std::size_t lanes = 0)
      : prefix_(std::move(topic_prefix)), queue_(hwm), policy_(policy) {
    lanes_.reserve(lanes);
    for (std::size_t i = 0; i < lanes; ++i) {
      lanes_.push_back(std::make_unique<BusQueue<Message>>(hwm));
    }
  }

  /// Blocking receive; nullopt after close() with every queue drained.
  /// MPMC-safe: a consumer pool can share one subscription.
  std::optional<Message> recv();
  /// Non-blocking receive; scans every lane (round-robin start for
  /// fairness) then the shared queue.
  std::optional<Message> try_recv();

  /// Sharded receive for a consumer pool: worker `shard` of `nshards`
  /// consumes only the lanes where lane % nshards == shard (shard 0
  /// also drains the shared queue).  Each lane then has exactly one
  /// consumer, so lane pops are uncontended SPSC instead of MPMC, and a
  /// flow's samples — RSS-pinned to one publisher lane — are handled by
  /// one worker in publish order instead of being scattered across the
  /// pool.  Returns nullopt once this shard's queues are closed and
  /// drained.  With nshards <= 1 or a lane-less subscription this is
  /// exactly recv()/try_recv().
  std::optional<Message> recv_shard(std::size_t shard, std::size_t nshards);
  std::optional<Message> try_recv_shard(std::size_t shard, std::size_t nshards);

  [[nodiscard]] const std::string& prefix() const { return prefix_; }
  [[nodiscard]] std::size_t lanes() const { return lanes_.size(); }
  /// Samples lost to the HWM (whole batches count all their samples).
  [[nodiscard]] std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }
  /// Samples accepted into the queue.
  [[nodiscard]] std::uint64_t delivered() const {
    return delivered_.load(std::memory_order_relaxed);
  }
  /// Queued messages (not samples) awaiting receive, across all lanes.
  [[nodiscard]] std::size_t pending() const;

  void close();

 private:
  friend class PubSocket;
  /// `samples`: how many samples `m` carries (counter weight).
  /// Shares frames either way — no byte copy. Mutex-free.
  bool offer(const Message& m, std::uint64_t samples) { return offer_to(queue_, m, samples); }
  /// Lane-targeted offer: lands on lane `lane`'s queue (single producer
  /// per lane by contract -> uncontended ticket CAS).  A lane index past
  /// what this subscription was built with falls back to the shared
  /// queue, so publish_lane is safe against mixed-topology subscribers.
  bool offer_lane(std::size_t lane, const Message& m, std::uint64_t samples) {
    return offer_to(lane < lanes_.size() ? *lanes_[lane] : queue_, m, samples);
  }
  bool offer_to(BusQueue<Message>& q, const Message& m, std::uint64_t samples) {
    const bool ok = policy_ == HwmPolicy::kBlock ? q.push(m) : q.try_push(m);
    if (ok) {
      delivered_.fetch_add(samples, std::memory_order_relaxed);
    } else {
      dropped_.fetch_add(samples, std::memory_order_relaxed);
    }
    return ok;
  }
  [[nodiscard]] bool closed_and_drained() const;
  [[nodiscard]] bool shard_closed_and_drained(std::size_t shard, std::size_t nshards) const;

  std::string prefix_;
  BusQueue<Message> queue_;  ///< shared (lane-less publish) queue
  /// Per-publisher-lane queues; unique_ptr because BusQueue is pinned.
  std::vector<std::unique_ptr<BusQueue<Message>>> lanes_;
  HwmPolicy policy_;
  std::atomic<std::uint64_t> delivered_{0};
  std::atomic<std::uint64_t> dropped_{0};
  /// Round-robin receive cursor (fairness across lanes, shared by a
  /// consumer pool).
  std::atomic<std::uint64_t> rr_{0};
};

class PubSocket {
 public:
  /// `fanin_lanes`: per-lane queues every future subscription gets (one
  /// per publishing worker; 0 = classic single-queue subscriptions).
  explicit PubSocket(std::size_t default_hwm = 4096, std::size_t fanin_lanes = 0)
      : default_hwm_(default_hwm), fanin_lanes_(fanin_lanes) {}
  ~PubSocket();

  PubSocket(const PubSocket&) = delete;
  PubSocket& operator=(const PubSocket&) = delete;

  /// New subscription for topics starting with `topic_prefix` (empty =
  /// everything). Thread-safe, including against concurrent publishers:
  /// the list is append-only and published with a release CAS.
  std::shared_ptr<Subscription> subscribe(std::string topic_prefix, std::size_t hwm = 0,
                                          HwmPolicy policy = HwmPolicy::kDrop);

  /// Fan out to all matching subscriptions; never blocks under kDrop and
  /// acquires no mutex. `samples` is the number of samples the message
  /// carries (weights the delivered/dropped/published counters). Returns
  /// the number of subscribers that accepted the message.
  std::size_t publish(const Message& message, std::uint64_t samples = 1);

  /// Lane-targeted publish: worker `lane`'s batches land on each
  /// subscriber's lane-`lane` queue.  Contract: at most one thread
  /// publishes on a given lane, which makes the ring's ticket CAS
  /// uncontended — N workers fan in without sharing a cursor.  Same
  /// no-block/no-mutex guarantees as publish().
  std::size_t publish_lane(std::size_t lane, const Message& message, std::uint64_t samples = 1);

  /// Install a clock (typically &obs::trace_clock()) before publishers
  /// start; the *_stamped publish variants then stamp enqueued_at on
  /// messages the caller has not stamped.  Centralizing the stamp here
  /// keeps every producer on one timebase, so bus queue-wait measured
  /// downstream is never skewed against trace spans.  nullptr = no
  /// stamping (the stamp read costs one TSC conversion per message).
  void set_stamp_clock(const Clock* clock) { stamp_clock_ = clock; }

  /// publish()/publish_lane() plus the enqueued_at stamp.  Takes a
  /// mutable message because the stamp is real metadata the consumer
  /// reads back; frames are still shared, never copied.
  std::size_t publish_stamped(Message& message, std::uint64_t samples = 1);
  std::size_t publish_lane_stamped(std::size_t lane, Message& message,
                                   std::uint64_t samples = 1);

  /// Close every subscription (consumers drain then see nullopt).
  void close_all();

  /// Samples published (sum of publish()/publish_lane() weights).
  [[nodiscard]] std::uint64_t published() const {
    return published_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t fanin_lanes() const { return fanin_lanes_; }
  [[nodiscard]] std::size_t subscriber_count() const;

 private:
  /// Append-only intrusive list; nodes live until the socket dies, so
  /// publishers can walk it without reference counting or hazard
  /// pointers.
  struct SubNode {
    std::shared_ptr<Subscription> sub;
    SubNode* next;
  };

  std::size_t default_hwm_;
  std::size_t fanin_lanes_;
  const Clock* stamp_clock_ = nullptr;  ///< set before publishers start
  std::atomic<SubNode*> head_{nullptr};
  std::atomic<std::uint64_t> published_{0};
};

}  // namespace ruru
