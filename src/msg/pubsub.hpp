#pragma once
// In-process topic pub/sub with high-water-mark drop semantics.
//
// Mirrors ZeroMQ PUB/SUB behaviour the pipeline relies on:
//  * a publisher never blocks — a subscriber whose queue is at its HWM
//    loses the message (the tap must not backpressure the capture path);
//  * subscription is by topic prefix;
//  * delivery is per-subscriber FIFO.
//
// The publish path is lock-free end to end: the subscriber list is an
// immutable atomic snapshot (copy-on-subscribe, never copy-on-publish),
// per-subscription queues are lock-free rings (BusQueue) and all
// counters are atomics.  Under HwmPolicy::kDrop a publish acquires no
// mutex regardless of subscriber count or contention.
//
// Counters are denominated in *samples*, not messages: publish() takes
// the number of samples the message carries (a batched latency frame
// carries many), so delivered/dropped/published stay truthful when the
// feed batches and an HWM drop loses a whole batch.

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "msg/bus_queue.hpp"
#include "msg/message.hpp"

namespace ruru {

/// What happens when a subscriber's queue is at its high-water mark.
enum class HwmPolicy {
  kDrop,   ///< lose the message (ZeroMQ PUB behaviour; pipeline default)
  kBlock,  ///< block the publisher (ablation: shows why taps must not)
};

class Subscription {
 public:
  Subscription(std::string topic_prefix, std::size_t hwm, HwmPolicy policy = HwmPolicy::kDrop)
      : prefix_(std::move(topic_prefix)), queue_(hwm), policy_(policy) {}

  /// Blocking receive; nullopt after close() with the queue drained.
  std::optional<Message> recv() { return queue_.pop(); }
  /// Non-blocking receive.
  std::optional<Message> try_recv() { return queue_.try_pop(); }

  [[nodiscard]] const std::string& prefix() const { return prefix_; }
  /// Samples lost to the HWM (whole batches count all their samples).
  [[nodiscard]] std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }
  /// Samples accepted into the queue.
  [[nodiscard]] std::uint64_t delivered() const {
    return delivered_.load(std::memory_order_relaxed);
  }
  /// Queued messages (not samples) awaiting receive.
  [[nodiscard]] std::size_t pending() const { return queue_.size(); }

  void close() { queue_.close(); }

 private:
  friend class PubSocket;
  /// `samples`: how many samples `m` carries (counter weight).
  /// Shares frames either way — no byte copy. Mutex-free.
  bool offer(const Message& m, std::uint64_t samples) {
    const bool ok = policy_ == HwmPolicy::kBlock ? queue_.push(m) : queue_.try_push(m);
    if (ok) {
      delivered_.fetch_add(samples, std::memory_order_relaxed);
    } else {
      dropped_.fetch_add(samples, std::memory_order_relaxed);
    }
    return ok;
  }

  std::string prefix_;
  BusQueue<Message> queue_;
  HwmPolicy policy_;
  std::atomic<std::uint64_t> delivered_{0};
  std::atomic<std::uint64_t> dropped_{0};
};

class PubSocket {
 public:
  explicit PubSocket(std::size_t default_hwm = 4096) : default_hwm_(default_hwm) {}
  ~PubSocket();

  PubSocket(const PubSocket&) = delete;
  PubSocket& operator=(const PubSocket&) = delete;

  /// New subscription for topics starting with `topic_prefix` (empty =
  /// everything). Thread-safe, including against concurrent publishers:
  /// the list is append-only and published with a release CAS.
  std::shared_ptr<Subscription> subscribe(std::string topic_prefix, std::size_t hwm = 0,
                                          HwmPolicy policy = HwmPolicy::kDrop);

  /// Fan out to all matching subscriptions; never blocks under kDrop and
  /// acquires no mutex. `samples` is the number of samples the message
  /// carries (weights the delivered/dropped/published counters). Returns
  /// the number of subscribers that accepted the message.
  std::size_t publish(const Message& message, std::uint64_t samples = 1);

  /// Close every subscription (consumers drain then see nullopt).
  void close_all();

  /// Samples published (sum of publish() weights).
  [[nodiscard]] std::uint64_t published() const {
    return published_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t subscriber_count() const;

 private:
  /// Append-only intrusive list; nodes live until the socket dies, so
  /// publishers can walk it without reference counting or hazard
  /// pointers.
  struct SubNode {
    std::shared_ptr<Subscription> sub;
    SubNode* next;
  };

  std::size_t default_hwm_;
  std::atomic<SubNode*> head_{nullptr};
  std::atomic<std::uint64_t> published_{0};
};

}  // namespace ruru
