#pragma once
// In-process topic pub/sub with high-water-mark drop semantics.
//
// Mirrors ZeroMQ PUB/SUB behaviour the pipeline relies on:
//  * a publisher never blocks — a subscriber whose queue is at its HWM
//    loses the message (the tap must not backpressure the capture path);
//  * subscription is by topic prefix;
//  * delivery is per-subscriber FIFO.

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "msg/message.hpp"
#include "util/mpmc_queue.hpp"

namespace ruru {

/// What happens when a subscriber's queue is at its high-water mark.
enum class HwmPolicy {
  kDrop,   ///< lose the message (ZeroMQ PUB behaviour; pipeline default)
  kBlock,  ///< block the publisher (ablation: shows why taps must not)
};

class Subscription {
 public:
  Subscription(std::string topic_prefix, std::size_t hwm, HwmPolicy policy = HwmPolicy::kDrop)
      : prefix_(std::move(topic_prefix)), queue_(hwm), policy_(policy) {}

  /// Blocking receive; nullopt after close() with the queue drained.
  std::optional<Message> recv() { return queue_.pop(); }
  /// Non-blocking receive.
  std::optional<Message> try_recv() { return queue_.try_pop(); }

  [[nodiscard]] const std::string& prefix() const { return prefix_; }
  [[nodiscard]] std::uint64_t dropped() const {
    std::lock_guard lock(mu_);
    return dropped_;
  }
  [[nodiscard]] std::uint64_t delivered() const {
    std::lock_guard lock(mu_);
    return delivered_;
  }
  [[nodiscard]] std::size_t pending() const { return queue_.size(); }

  void close() { queue_.close(); }

 private:
  friend class PubSocket;
  bool offer(const Message& m) {
    // Shares frames either way — no byte copy.
    const bool ok =
        policy_ == HwmPolicy::kBlock ? queue_.push(m) : queue_.try_push(m);
    std::lock_guard lock(mu_);
    if (ok) {
      ++delivered_;
    } else {
      ++dropped_;
    }
    return ok;
  }

  std::string prefix_;
  MpmcQueue<Message> queue_;
  HwmPolicy policy_;
  mutable std::mutex mu_;
  std::uint64_t delivered_ = 0;
  std::uint64_t dropped_ = 0;
};

class PubSocket {
 public:
  explicit PubSocket(std::size_t default_hwm = 4096) : default_hwm_(default_hwm) {}

  /// New subscription for topics starting with `topic_prefix` (empty =
  /// everything). Thread-safe.
  std::shared_ptr<Subscription> subscribe(std::string topic_prefix, std::size_t hwm = 0,
                                          HwmPolicy policy = HwmPolicy::kDrop);

  /// Fan out to all matching subscriptions; never blocks. Returns the
  /// number of subscribers that accepted the message.
  std::size_t publish(const Message& message);

  /// Close every subscription (consumers drain then see nullopt).
  void close_all();

  [[nodiscard]] std::uint64_t published() const {
    std::lock_guard lock(mu_);
    return published_;
  }
  [[nodiscard]] std::size_t subscriber_count() const {
    std::lock_guard lock(mu_);
    return subs_.size();
  }

 private:
  std::size_t default_hwm_;
  mutable std::mutex mu_;
  std::vector<std::shared_ptr<Subscription>> subs_;
  std::uint64_t published_ = 0;
};

}  // namespace ruru
