#pragma once
// Zero-copy message frames (the ZeroMQ role in the paper's pipeline).
//
// A Frame is an immutable, reference-counted byte buffer; copying a
// Frame or a Message shares the buffer instead of duplicating it, which
// is what lets one latency measurement fan out to the analytics workers,
// the TSDB writer and the WebSocket feed without copies.  A Message is a
// short sequence of frames; by convention frame 0 is the topic.

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "util/time.hpp"

namespace ruru {

class Frame {
 public:
  Frame() = default;

  /// Copies `data` into a new shared buffer (the single copy a message
  /// ever makes).
  static Frame copy(std::span<const std::uint8_t> data);
  static Frame from_string(std::string_view text);
  /// Adopts an already-built buffer without copying.
  static Frame adopt(std::vector<std::uint8_t> buffer);

  [[nodiscard]] const std::uint8_t* data() const {
    return buffer_ ? buffer_->data() : nullptr;
  }
  [[nodiscard]] std::size_t size() const { return buffer_ ? buffer_->size() : 0; }
  [[nodiscard]] std::span<const std::uint8_t> bytes() const { return {data(), size()}; }
  [[nodiscard]] std::string_view view() const {
    return {reinterpret_cast<const char*>(data()), size()};
  }
  [[nodiscard]] bool empty() const { return size() == 0; }

  /// Number of Frames sharing this buffer (tests assert zero-copy).
  [[nodiscard]] long use_count() const { return buffer_ ? buffer_.use_count() : 0; }

 private:
  explicit Frame(std::shared_ptr<const std::vector<std::uint8_t>> buffer)
      : buffer_(std::move(buffer)) {}
  std::shared_ptr<const std::vector<std::uint8_t>> buffer_;
};

struct Message {
  std::vector<Frame> frames;
  /// Publish stamp, set by the publisher and NOT serialized into any
  /// frame.  The telemetry layer uses it to measure bus queue wait +
  /// downstream processing (capture timestamps are virtual scenario
  /// time in replay, so transit is anchored here instead).  Stamped
  /// from the calibrated TSC trace clock (see obs/tsc_clock.hpp) so
  /// queue-wait, batch-latency and trace spans share one timebase.
  Timestamp enqueued_at{};
  /// Flight-recorder metadata (NOT serialized): the first traced
  /// sample's id in a batched latency message, 0 when the batch holds
  /// no traced samples.  A cheap contains-traced flag — consumers
  /// re-derive exact per-sample ids from each sample's RSS hash.
  std::uint32_t trace_id = 0;

  Message() = default;
  explicit Message(std::string_view topic) { frames.push_back(Frame::from_string(topic)); }

  [[nodiscard]] std::string_view topic() const {
    return frames.empty() ? std::string_view{} : frames[0].view();
  }
  [[nodiscard]] std::size_t total_bytes() const {
    std::size_t n = 0;
    for (const auto& f : frames) n += f.size();
    return n;
  }

  Message& add(Frame f) {
    frames.push_back(std::move(f));
    return *this;
  }
};

}  // namespace ruru
