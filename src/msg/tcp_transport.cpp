#include "msg/tcp_transport.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/byte_order.hpp"

namespace ruru {

namespace {

constexpr std::uint32_t kMagic = 0x31555252;  // "RRU1" little-endian

bool write_all(int fd, const std::uint8_t* data, std::size_t len) {
  while (len > 0) {
    const ssize_t n = ::send(fd, data, len, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    data += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

bool read_all(int fd, std::uint8_t* data, std::size_t len) {
  while (len > 0) {
    const ssize_t n = ::recv(fd, data, len, 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    data += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

std::vector<std::uint8_t> serialize(const Message& m) {
  std::size_t total = 8;
  for (const auto& f : m.frames) total += 4 + f.size();
  std::vector<std::uint8_t> buf(total);
  std::uint8_t* p = buf.data();
  store_le32(p, kMagic);
  store_le32(p + 4, static_cast<std::uint32_t>(m.frames.size()));
  p += 8;
  for (const auto& f : m.frames) {
    store_le32(p, static_cast<std::uint32_t>(f.size()));
    p += 4;
    std::memcpy(p, f.data(), f.size());
    p += f.size();
  }
  return buf;
}

}  // namespace

TcpBusServer::~TcpBusServer() { close(); }

Status TcpBusServer::bind(std::uint16_t port) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return make_error("tcp-bus: socket() failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return make_error("tcp-bus: bind() failed: " + std::string(std::strerror(errno)));
  }
  if (::listen(listen_fd_, 16) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return make_error("tcp-bus: listen() failed");
  }
  socklen_t len = sizeof addr;
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);

  accept_thread_ = std::thread([this] { accept_loop(); });
  return {};
}

void TcpBusServer::accept_loop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (stopping_.load(std::memory_order_acquire)) break;
      if (errno == EINTR) continue;
      break;  // listen socket closed
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    // Bound the stall a slow client can impose: after 100 ms of a full
    // send buffer the write fails and the client is dropped, so the
    // publisher never backpressures the pipeline for long.
    timeval send_timeout{0, 100'000};
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &send_timeout, sizeof send_timeout);
    std::lock_guard lock(mu_);
    clients_.push_back(fd);
  }
}

std::size_t TcpBusServer::publish(const Message& message) {
  const std::vector<std::uint8_t> wire = serialize(message);
  std::lock_guard lock(mu_);
  std::size_t reached = 0;
  for (auto it = clients_.begin(); it != clients_.end();) {
    if (write_all(*it, wire.data(), wire.size())) {
      ++reached;
      ++it;
    } else {
      ::close(*it);
      it = clients_.erase(it);
      disconnects_.fetch_add(1);
    }
  }
  return reached;
}

std::size_t TcpBusServer::client_count() const {
  std::lock_guard lock(mu_);
  return clients_.size();
}

void TcpBusServer::close() {
  if (stopping_.exchange(true)) return;
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  std::lock_guard lock(mu_);
  for (const int fd : clients_) ::close(fd);
  clients_.clear();
  listen_fd_ = -1;
}

Result<TcpBusClient> TcpBusClient::connect(const std::string& host, std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return make_error("tcp-bus: socket() failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return make_error("tcp-bus: bad address '" + host + "'");
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return make_error("tcp-bus: connect() failed: " + std::string(std::strerror(errno)));
  }
  return TcpBusClient(fd);
}

TcpBusClient& TcpBusClient::operator=(TcpBusClient&& o) noexcept {
  if (this != &o) {
    close();
    fd_ = o.fd_;
    o.fd_ = -1;
  }
  return *this;
}

TcpBusClient::~TcpBusClient() { close(); }

void TcpBusClient::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

std::optional<Message> TcpBusClient::recv() {
  if (fd_ < 0) return std::nullopt;
  std::uint8_t hdr[8];
  if (!read_all(fd_, hdr, sizeof hdr)) return std::nullopt;
  if (load_le32(hdr) != kMagic) return std::nullopt;
  const std::uint32_t nframes = load_le32(hdr + 4);
  if (nframes > 64) return std::nullopt;  // sanity bound

  Message m;
  for (std::uint32_t i = 0; i < nframes; ++i) {
    std::uint8_t lenbuf[4];
    if (!read_all(fd_, lenbuf, 4)) return std::nullopt;
    const std::uint32_t len = load_le32(lenbuf);
    if (len > (1u << 24)) return std::nullopt;  // 16 MB frame cap
    std::vector<std::uint8_t> payload(len);
    if (len != 0 && !read_all(fd_, payload.data(), len)) return std::nullopt;
    m.add(Frame::adopt(std::move(payload)));
  }
  return m;
}

}  // namespace ruru
