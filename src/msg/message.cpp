#include "msg/message.hpp"

namespace ruru {

Frame Frame::copy(std::span<const std::uint8_t> data) {
  return Frame(std::make_shared<const std::vector<std::uint8_t>>(data.begin(), data.end()));
}

Frame Frame::from_string(std::string_view text) {
  const auto* p = reinterpret_cast<const std::uint8_t*>(text.data());
  return copy(std::span<const std::uint8_t>(p, text.size()));
}

Frame Frame::adopt(std::vector<std::uint8_t> buffer) {
  return Frame(std::make_shared<const std::vector<std::uint8_t>>(std::move(buffer)));
}

}  // namespace ruru
