#include "msg/codec.hpp"

#include <cstring>

#include "util/byte_order.hpp"

namespace ruru {

namespace {

constexpr std::uint8_t kVersion = 1;
// version(1) family(1) client16 server16 cport(2) sport(2)
// syn(8) synack(8) ack(8) rss(4) queue(2)
constexpr std::size_t kPayloadSize = 1 + 1 + 16 + 16 + 2 + 2 + 8 + 8 + 8 + 4 + 2;

void put_ip(std::uint8_t* p, const IpAddress& a) {
  if (a.is_v4()) {
    std::memset(p, 0, 16);
    store_be32(p + 12, a.v4.value());  // v4-mapped layout
  } else {
    std::memcpy(p, a.v6.bytes().data(), 16);
  }
}

IpAddress get_ip(const std::uint8_t* p, bool v4) {
  if (v4) return Ipv4Address(load_be32(p + 12));
  std::array<std::uint8_t, 16> b{};
  std::memcpy(b.data(), p, 16);
  return Ipv6Address(b);
}

void put_i64(std::uint8_t* p, std::int64_t v) {
  store_be64(p, static_cast<std::uint64_t>(v));
}

std::int64_t get_i64(const std::uint8_t* p) { return static_cast<std::int64_t>(load_be64(p)); }

}  // namespace

Message encode_latency_sample(const LatencySample& s) {
  std::vector<std::uint8_t> buf(kPayloadSize);
  std::uint8_t* p = buf.data();
  p[0] = kVersion;
  p[1] = s.client.is_v4() ? 4 : 6;
  put_ip(p + 2, s.client);
  put_ip(p + 18, s.server);
  store_be16(p + 34, s.client_port);
  store_be16(p + 36, s.server_port);
  put_i64(p + 38, s.syn_time.ns);
  put_i64(p + 46, s.synack_time.ns);
  put_i64(p + 54, s.ack_time.ns);
  store_be32(p + 62, s.rss_hash);
  store_be16(p + 66, s.queue_id);

  Message m(kLatencyTopic);
  m.add(Frame::adopt(std::move(buf)));
  return m;
}

std::optional<LatencySample> decode_latency_sample(const Frame& payload) {
  if (payload.size() != kPayloadSize) return std::nullopt;
  const std::uint8_t* p = payload.data();
  if (p[0] != kVersion) return std::nullopt;
  if (p[1] != 4 && p[1] != 6) return std::nullopt;
  const bool v4 = p[1] == 4;

  LatencySample s;
  s.client = get_ip(p + 2, v4);
  s.server = get_ip(p + 18, v4);
  s.client_port = load_be16(p + 34);
  s.server_port = load_be16(p + 36);
  s.syn_time = Timestamp{get_i64(p + 38)};
  s.synack_time = Timestamp{get_i64(p + 46)};
  s.ack_time = Timestamp{get_i64(p + 54)};
  s.rss_hash = load_be32(p + 62);
  s.queue_id = load_be16(p + 66);
  return s;
}

}  // namespace ruru
