#include "msg/codec.hpp"

#include <cstring>

#include "util/byte_order.hpp"

namespace ruru {

namespace {

constexpr std::uint8_t kVersion = 1;
constexpr std::uint8_t kBatchVersion = 2;
// family(1) client16 server16 cport(2) sport(2) syn(8) synack(8) ack(8)
// rss(4) queue(2) — shared by both payload versions.
constexpr std::size_t kRecordSize = 1 + 16 + 16 + 2 + 2 + 8 + 8 + 8 + 4 + 2;
// v1: version(1) + record
constexpr std::size_t kPayloadSize = 1 + kRecordSize;
// v2: version(1) + count(2) + count * record
constexpr std::size_t kBatchHeaderSize = 1 + 2;

void put_ip(std::uint8_t* p, const IpAddress& a) {
  if (a.is_v4()) {
    std::memset(p, 0, 16);
    store_be32(p + 12, a.v4.value());  // v4-mapped layout
  } else {
    std::memcpy(p, a.v6.bytes().data(), 16);
  }
}

IpAddress get_ip(const std::uint8_t* p, bool v4) {
  if (v4) return Ipv4Address(load_be32(p + 12));
  std::array<std::uint8_t, 16> b{};
  std::memcpy(b.data(), p, 16);
  return Ipv6Address(b);
}

void put_i64(std::uint8_t* p, std::int64_t v) {
  store_be64(p, static_cast<std::uint64_t>(v));
}

std::int64_t get_i64(const std::uint8_t* p) { return static_cast<std::int64_t>(load_be64(p)); }

void put_record(std::uint8_t* p, const LatencySample& s) {
  // Family byte doubles as the sample-kind carrier: low nibble is the
  // address family (4 or 6), bits 4-5 the SampleKind, bit 6 the in-flow
  // orientation.  A handshake sample (kind 0, toward_client false)
  // writes exactly the pre-feature byte, so the wire stays bit-identical
  // with the in-flow kernel off.
  p[0] = static_cast<std::uint8_t>((s.client.is_v4() ? 4 : 6) |
                                   (static_cast<std::uint8_t>(s.kind) << 4) |
                                   (s.toward_client ? 0x40 : 0));
  put_ip(p + 1, s.client);
  put_ip(p + 17, s.server);
  store_be16(p + 33, s.client_port);
  store_be16(p + 35, s.server_port);
  put_i64(p + 37, s.syn_time.ns);
  put_i64(p + 45, s.synack_time.ns);
  put_i64(p + 53, s.ack_time.ns);
  store_be32(p + 61, s.rss_hash);
  store_be16(p + 65, s.queue_id);
}

bool get_record(const std::uint8_t* p, LatencySample& s) {
  const std::uint8_t family = p[0] & 0x0f;
  const std::uint8_t kind = (p[0] >> 4) & 0x03;
  if (family != 4 && family != 6) return false;
  if (kind > static_cast<std::uint8_t>(SampleKind::kOneSided)) return false;
  if ((p[0] & 0x80) != 0) return false;  // reserved bit must be clear
  const bool v4 = family == 4;
  s.kind = static_cast<SampleKind>(kind);
  s.toward_client = (p[0] & 0x40) != 0;
  s.client = get_ip(p + 1, v4);
  s.server = get_ip(p + 17, v4);
  s.client_port = load_be16(p + 33);
  s.server_port = load_be16(p + 35);
  s.syn_time = Timestamp{get_i64(p + 37)};
  s.synack_time = Timestamp{get_i64(p + 45)};
  s.ack_time = Timestamp{get_i64(p + 53)};
  s.rss_hash = load_be32(p + 61);
  s.queue_id = load_be16(p + 65);
  return true;
}

}  // namespace

const Frame& latency_topic_frame() {
  static const Frame frame = Frame::from_string(kLatencyTopic);
  return frame;
}

Message encode_latency_sample(const LatencySample& s) {
  std::vector<std::uint8_t> buf(kPayloadSize);
  buf[0] = kVersion;
  put_record(buf.data() + 1, s);

  Message m;
  m.frames.reserve(2);
  m.frames.push_back(latency_topic_frame());
  m.frames.push_back(Frame::adopt(std::move(buf)));
  return m;
}

std::optional<LatencySample> decode_latency_sample(const Frame& payload) {
  if (payload.size() != kPayloadSize) return std::nullopt;
  const std::uint8_t* p = payload.data();
  if (p[0] != kVersion) return std::nullopt;
  LatencySample s;
  if (!get_record(p + 1, s)) return std::nullopt;
  return s;
}

Message encode_latency_batch(std::span<const LatencySample> samples) {
  const std::size_t count = samples.size() < kMaxLatencyBatch ? samples.size() : kMaxLatencyBatch;
  std::vector<std::uint8_t> buf(kBatchHeaderSize + count * kRecordSize);
  buf[0] = kBatchVersion;
  store_be16(buf.data() + 1, static_cast<std::uint16_t>(count));
  std::uint8_t* p = buf.data() + kBatchHeaderSize;
  std::uint32_t batch_trace_id = 0;
  for (std::size_t i = 0; i < count; ++i, p += kRecordSize) {
    put_record(p, samples[i]);
    // Flight recorder: remember the first traced sample so consumers
    // can skip whole untraced batches with one compare.  Message
    // metadata only — the record bytes above are unchanged.
    if (batch_trace_id == 0) batch_trace_id = samples[i].trace_id;
  }

  Message m;
  m.trace_id = batch_trace_id;
  m.frames.reserve(2);
  m.frames.push_back(latency_topic_frame());
  m.frames.push_back(Frame::adopt(std::move(buf)));
  return m;
}

bool decode_latency_batch(const Frame& payload, std::vector<LatencySample>& out) {
  if (payload.size() < kBatchHeaderSize) return false;
  const std::uint8_t* p = payload.data();
  if (p[0] != kBatchVersion) return false;
  const std::size_t count = load_be16(p + 1);
  if (count > kMaxLatencyBatch) return false;
  if (payload.size() != kBatchHeaderSize + count * kRecordSize) return false;

  const std::size_t base = out.size();
  out.resize(base + count);
  const std::uint8_t* rec = p + kBatchHeaderSize;
  for (std::size_t i = 0; i < count; ++i, rec += kRecordSize) {
    if (!get_record(rec, out[base + i])) {
      out.resize(base);  // reject the whole batch, leave out untouched
      return false;
    }
  }
  return true;
}

bool decode_latency_payload(const Frame& payload, std::vector<LatencySample>& out) {
  if (payload.empty()) return false;
  if (payload.data()[0] == kBatchVersion) return decode_latency_batch(payload, out);
  if (auto s = decode_latency_sample(payload)) {
    out.push_back(*s);
    return true;
  }
  return false;
}

}  // namespace ruru
