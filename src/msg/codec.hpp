#pragma once
// Wire codec for latency measurements on the bus.
//
// The DPDK stage publishes (src ip, dst ip, internal, external) — the
// paper's exact record — on topic "ruru.latency".  Encoding is a fixed
// little-endian layout; decode validates length and version so bus
// consumers can reject foreign traffic.
//
// Two payload versions share one record layout:
//  * v1: [version=1][record]                 — one sample per message;
//  * v2: [version=2][count BE16][records...] — up to kMaxLatencyBatch
//    samples per message, the batched feed the queue workers emit.
// Consumers that tap the live topic should use decode_latency_payload,
// which dispatches on the version byte and accepts both.

#include <optional>
#include <span>
#include <vector>

#include "flow/latency_sample.hpp"
#include "msg/message.hpp"

namespace ruru {

inline constexpr std::string_view kLatencyTopic = "ruru.latency";

/// The interned topic frame: every latency message shares one buffer
/// instead of re-allocating the topic per publish.
[[nodiscard]] const Frame& latency_topic_frame();

/// Encodes the sample as a two-frame message: [topic, payload] (v1).
[[nodiscard]] Message encode_latency_sample(const LatencySample& sample);

/// Decodes a v1 payload frame produced by encode_latency_sample.
[[nodiscard]] std::optional<LatencySample> decode_latency_sample(const Frame& payload);

/// Encodes up to kMaxLatencyBatch samples into one [topic, payload]
/// message (v2). Samples beyond the bound are not encoded — callers
/// (the worker accumulator) flush at or below it.
[[nodiscard]] Message encode_latency_batch(std::span<const LatencySample> samples);

/// Decodes a v2 batch payload, appending every sample to `out`.
/// Truncated or oversized payloads, bad version bytes, count/length
/// mismatches and corrupt records are all rejected as a whole: returns
/// false and leaves `out` exactly as it was.
[[nodiscard]] bool decode_latency_batch(const Frame& payload, std::vector<LatencySample>& out);

/// Version-dispatching decode: accepts v1 single-sample and v2 batch
/// payloads, appending to `out`. False (and `out` untouched) on corrupt
/// or foreign payloads.
[[nodiscard]] bool decode_latency_payload(const Frame& payload, std::vector<LatencySample>& out);

}  // namespace ruru
