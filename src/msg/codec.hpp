#pragma once
// Wire codec for latency measurements on the bus.
//
// The DPDK stage publishes (src ip, dst ip, internal, external) — the
// paper's exact record — on topic "ruru.latency".  Encoding is a fixed
// little-endian layout; decode validates length and version so bus
// consumers can reject foreign traffic.

#include <optional>

#include "flow/latency_sample.hpp"
#include "msg/message.hpp"

namespace ruru {

inline constexpr std::string_view kLatencyTopic = "ruru.latency";

/// Encodes the sample as a two-frame message: [topic, payload].
[[nodiscard]] Message encode_latency_sample(const LatencySample& sample);

/// Decodes a payload frame produced by encode_latency_sample.
[[nodiscard]] std::optional<LatencySample> decode_latency_sample(const Frame& payload);

}  // namespace ruru
