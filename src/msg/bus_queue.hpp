#pragma once
// Lock-free subscription queue: MpmcRing + close semantics + HWM.
//
// The bus publish path must take zero locks under HwmPolicy::kDrop — a
// publisher's offer is a CAS ticket claim on the ring plus two relaxed
// counter bumps, never a mutex.  Blocking receive (and the kBlock
// ablation policy's blocking send) are built from the non-blocking ring
// ops with a spin -> yield -> sleep backoff instead of a condition
// variable, so no mutex exists anywhere on the path.

#include <atomic>
#include <chrono>
#include <cstddef>
#include <optional>
#include <thread>

#include "driver/ring.hpp"

namespace ruru {

namespace detail {

/// Escalating wait: brief spin, then yield, then short sleeps. Keeps
/// wakeup latency in the tens of microseconds without a condvar.
class Backoff {
 public:
  void pause() {
    if (rounds_ < kSpinRounds) {
      ++rounds_;
    } else if (rounds_ < kSpinRounds + kYieldRounds) {
      ++rounds_;
      std::this_thread::yield();
    } else {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  }

 private:
  static constexpr int kSpinRounds = 64;
  static constexpr int kYieldRounds = 32;
  int rounds_ = 0;
};

}  // namespace detail

template <typename T>
class BusQueue {
 public:
  /// `hwm` is enforced exactly even when it is not a power of two (the
  /// backing ring rounds its capacity up; the extra slots stay unused).
  explicit BusQueue(std::size_t hwm) : ring_(hwm < 2 ? 2 : hwm), hwm_(hwm == 0 ? 1 : hwm) {}

  BusQueue(const BusQueue&) = delete;
  BusQueue& operator=(const BusQueue&) = delete;

  /// Non-blocking; false when at the HWM or closed. Lock-free.
  bool try_push(T value) {
    if (closed_.load(std::memory_order_acquire)) return false;
    if (ring_.size() >= hwm_) return false;
    return ring_.try_push_from(value);
  }

  /// Blocking push (kBlock ablation); false once closed.
  bool push(T value) {
    detail::Backoff backoff;
    while (!closed_.load(std::memory_order_acquire)) {
      // try_push_from consumes `value` only on success, so retrying the
      // same object after a full ring is safe.
      if (ring_.size() < hwm_ && ring_.try_push_from(value)) return true;
      backoff.pause();
    }
    return false;
  }

  /// Non-blocking pop. Lock-free.
  std::optional<T> try_pop() { return ring_.try_pop(); }

  /// Blocking pop; nullopt only after close() with the ring drained.
  std::optional<T> pop() {
    detail::Backoff backoff;
    while (true) {
      if (auto v = ring_.try_pop()) return v;
      if (closed_.load(std::memory_order_acquire)) {
        // A push that claimed its ticket before close() may still be
        // publishing; ring_.size() already counts it, so only an empty
        // ring means drained.
        if (ring_.size() == 0) return std::nullopt;
      }
      backoff.pause();
    }
  }

  /// After close(): pushes fail, pops drain the backlog then report
  /// nullopt. Idempotent; wakes pollers by virtue of them polling.
  void close() { closed_.store(true, std::memory_order_release); }

  [[nodiscard]] bool closed() const { return closed_.load(std::memory_order_acquire); }
  [[nodiscard]] std::size_t size() const { return ring_.size(); }

 private:
  MpmcRing<T> ring_;
  std::size_t hwm_;
  std::atomic<bool> closed_{false};
};

}  // namespace ruru
