#pragma once
// TCP transport for the bus (the "tcp://" flavour of the ZeroMQ role).
//
// Length-prefixed multi-frame messages over a stream socket:
//   u32 magic 'RRU1' | u32 frame_count | frame_count x (u32 len | bytes)
// all little-endian.  The server pushes every published message to every
// connected client; a client that cannot keep up (send buffer full for
// more than a 100 ms grace) is disconnected rather than allowed to
// backpressure the pipeline — ZeroMQ-PUB-like behaviour at the
// transport level.

#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "msg/message.hpp"
#include "util/result.hpp"

namespace ruru {

class TcpBusServer {
 public:
  TcpBusServer() = default;
  ~TcpBusServer();
  TcpBusServer(const TcpBusServer&) = delete;
  TcpBusServer& operator=(const TcpBusServer&) = delete;

  /// Binds 127.0.0.1:`port` (0 = ephemeral) and starts the accept loop.
  Status bind(std::uint16_t port);

  /// Port actually bound (after bind with port 0).
  [[nodiscard]] std::uint16_t port() const { return port_; }

  /// Sends to all connected clients. Returns clients reached.
  std::size_t publish(const Message& message);

  [[nodiscard]] std::size_t client_count() const;
  [[nodiscard]] std::uint64_t disconnects() const { return disconnects_.load(); }

  void close();

 private:
  void accept_loop();

  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::thread accept_thread_;
  std::atomic<bool> stopping_{false};
  mutable std::mutex mu_;
  std::vector<int> clients_;
  std::atomic<std::uint64_t> disconnects_{0};
};

class TcpBusClient {
 public:
  static Result<TcpBusClient> connect(const std::string& host, std::uint16_t port);

  TcpBusClient(TcpBusClient&& o) noexcept : fd_(o.fd_) { o.fd_ = -1; }
  TcpBusClient& operator=(TcpBusClient&& o) noexcept;
  ~TcpBusClient();

  /// Blocking receive of one message; nullopt on EOF/error.
  std::optional<Message> recv();

  void close();

 private:
  explicit TcpBusClient(int fd) : fd_(fd) {}
  int fd_ = -1;
};

}  // namespace ruru
