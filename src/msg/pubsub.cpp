#include "msg/pubsub.hpp"

namespace ruru {

std::shared_ptr<Subscription> PubSocket::subscribe(std::string topic_prefix, std::size_t hwm,
                                                   HwmPolicy policy) {
  auto sub = std::make_shared<Subscription>(std::move(topic_prefix),
                                            hwm != 0 ? hwm : default_hwm_, policy);
  std::lock_guard lock(mu_);
  subs_.push_back(sub);
  return sub;
}

std::size_t PubSocket::publish(const Message& message) {
  // Snapshot subscribers so slow receivers never hold the pub lock.
  std::vector<std::shared_ptr<Subscription>> snapshot;
  {
    std::lock_guard lock(mu_);
    ++published_;
    snapshot = subs_;
  }
  std::size_t accepted = 0;
  const std::string_view topic = message.topic();
  for (const auto& sub : snapshot) {
    if (topic.substr(0, sub->prefix().size()) == sub->prefix()) {
      if (sub->offer(message)) ++accepted;
    }
  }
  return accepted;
}

void PubSocket::close_all() {
  std::vector<std::shared_ptr<Subscription>> snapshot;
  {
    std::lock_guard lock(mu_);
    snapshot = subs_;
  }
  for (const auto& sub : snapshot) sub->close();
}

}  // namespace ruru
