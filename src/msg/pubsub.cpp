#include "msg/pubsub.hpp"

namespace ruru {

std::optional<Message> Subscription::try_recv() {
  if (lanes_.empty()) return queue_.try_pop();
  // Rotate the scan start so a consumer pool drains lanes fairly and no
  // lane starves behind a chatty one.
  const std::size_t total = lanes_.size() + 1;  // + shared queue
  const std::size_t start =
      static_cast<std::size_t>(rr_.fetch_add(1, std::memory_order_relaxed)) % total;
  for (std::size_t k = 0; k < total; ++k) {
    const std::size_t idx = (start + k) % total;
    BusQueue<Message>& q = idx < lanes_.size() ? *lanes_[idx] : queue_;
    if (auto v = q.try_pop()) return v;
  }
  return std::nullopt;
}

std::optional<Message> Subscription::recv() {
  if (lanes_.empty()) return queue_.pop();
  detail::Backoff backoff;
  while (true) {
    if (auto v = try_recv()) return v;
    if (closed_and_drained()) return std::nullopt;
    backoff.pause();
  }
}

std::optional<Message> Subscription::try_recv_shard(std::size_t shard, std::size_t nshards) {
  if (nshards <= 1 || lanes_.empty()) return try_recv();
  shard %= nshards;
  // This shard owns lanes shard, shard + nshards, shard + 2*nshards, ...
  const std::size_t nmine =
      lanes_.size() > shard ? (lanes_.size() - shard + nshards - 1) / nshards : 0;
  if (nmine != 0) {
    // Rotate the start lane so no owned lane starves behind a chatty
    // one; ownership is unaffected (still one consumer per lane).
    const std::size_t start =
        static_cast<std::size_t>(rr_.fetch_add(1, std::memory_order_relaxed)) % nmine;
    for (std::size_t k = 0; k < nmine; ++k) {
      const std::size_t lane = shard + ((start + k) % nmine) * nshards;
      if (auto v = lanes_[lane]->try_pop()) return v;
    }
  }
  if (shard == 0) return queue_.try_pop();
  return std::nullopt;
}

std::optional<Message> Subscription::recv_shard(std::size_t shard, std::size_t nshards) {
  if (nshards <= 1 || lanes_.empty()) return recv();
  detail::Backoff backoff;
  while (true) {
    if (auto v = try_recv_shard(shard, nshards)) return v;
    if (shard_closed_and_drained(shard % nshards, nshards)) return std::nullopt;
    backoff.pause();
  }
}

bool Subscription::shard_closed_and_drained(std::size_t shard, std::size_t nshards) const {
  if (shard == 0 && (!queue_.closed() || queue_.size() != 0)) return false;
  for (std::size_t lane = shard; lane < lanes_.size(); lane += nshards) {
    if (!lanes_[lane]->closed() || lanes_[lane]->size() != 0) return false;
  }
  return true;
}

bool Subscription::closed_and_drained() const {
  // Same contract as BusQueue::pop: a push that claimed its ring ticket
  // before close() is counted by size(), so closed + all-empty means
  // nothing more can arrive.
  if (!queue_.closed() || queue_.size() != 0) return false;
  for (const auto& lane : lanes_) {
    if (!lane->closed() || lane->size() != 0) return false;
  }
  return true;
}

std::size_t Subscription::pending() const {
  std::size_t n = queue_.size();
  for (const auto& lane : lanes_) n += lane->size();
  return n;
}

void Subscription::close() {
  queue_.close();
  for (auto& lane : lanes_) lane->close();
}

PubSocket::~PubSocket() {
  SubNode* node = head_.load(std::memory_order_acquire);
  while (node != nullptr) {
    SubNode* next = node->next;
    delete node;
    node = next;
  }
}

std::shared_ptr<Subscription> PubSocket::subscribe(std::string topic_prefix, std::size_t hwm,
                                                   HwmPolicy policy) {
  auto sub = std::make_shared<Subscription>(std::move(topic_prefix),
                                            hwm != 0 ? hwm : default_hwm_, policy, fanin_lanes_);
  auto* node = new SubNode{sub, head_.load(std::memory_order_relaxed)};
  while (!head_.compare_exchange_weak(node->next, node, std::memory_order_release,
                                      std::memory_order_relaxed)) {
  }
  return sub;
}

std::size_t PubSocket::publish(const Message& message, std::uint64_t samples) {
  published_.fetch_add(samples, std::memory_order_relaxed);
  std::size_t accepted = 0;
  const std::string_view topic = message.topic();
  for (SubNode* node = head_.load(std::memory_order_acquire); node != nullptr;
       node = node->next) {
    if (topic.starts_with(node->sub->prefix())) {
      if (node->sub->offer(message, samples)) ++accepted;
    }
  }
  return accepted;
}

std::size_t PubSocket::publish_lane(std::size_t lane, const Message& message,
                                    std::uint64_t samples) {
  published_.fetch_add(samples, std::memory_order_relaxed);
  std::size_t accepted = 0;
  const std::string_view topic = message.topic();
  for (SubNode* node = head_.load(std::memory_order_acquire); node != nullptr;
       node = node->next) {
    if (topic.starts_with(node->sub->prefix())) {
      if (node->sub->offer_lane(lane, message, samples)) ++accepted;
    }
  }
  return accepted;
}

std::size_t PubSocket::publish_stamped(Message& message, std::uint64_t samples) {
  if (stamp_clock_ != nullptr && message.enqueued_at.ns == 0) {
    message.enqueued_at = stamp_clock_->now();
  }
  return publish(message, samples);
}

std::size_t PubSocket::publish_lane_stamped(std::size_t lane, Message& message,
                                            std::uint64_t samples) {
  if (stamp_clock_ != nullptr && message.enqueued_at.ns == 0) {
    message.enqueued_at = stamp_clock_->now();
  }
  return publish_lane(lane, message, samples);
}

void PubSocket::close_all() {
  for (SubNode* node = head_.load(std::memory_order_acquire); node != nullptr;
       node = node->next) {
    node->sub->close();
  }
}

std::size_t PubSocket::subscriber_count() const {
  std::size_t n = 0;
  for (SubNode* node = head_.load(std::memory_order_acquire); node != nullptr;
       node = node->next) {
    ++n;
  }
  return n;
}

}  // namespace ruru
