#include "msg/pubsub.hpp"

namespace ruru {

PubSocket::~PubSocket() {
  SubNode* node = head_.load(std::memory_order_acquire);
  while (node != nullptr) {
    SubNode* next = node->next;
    delete node;
    node = next;
  }
}

std::shared_ptr<Subscription> PubSocket::subscribe(std::string topic_prefix, std::size_t hwm,
                                                   HwmPolicy policy) {
  auto sub = std::make_shared<Subscription>(std::move(topic_prefix),
                                            hwm != 0 ? hwm : default_hwm_, policy);
  auto* node = new SubNode{sub, head_.load(std::memory_order_relaxed)};
  while (!head_.compare_exchange_weak(node->next, node, std::memory_order_release,
                                      std::memory_order_relaxed)) {
  }
  return sub;
}

std::size_t PubSocket::publish(const Message& message, std::uint64_t samples) {
  published_.fetch_add(samples, std::memory_order_relaxed);
  std::size_t accepted = 0;
  const std::string_view topic = message.topic();
  for (SubNode* node = head_.load(std::memory_order_acquire); node != nullptr;
       node = node->next) {
    if (topic.starts_with(node->sub->prefix())) {
      if (node->sub->offer(message, samples)) ++accepted;
    }
  }
  return accepted;
}

void PubSocket::close_all() {
  for (SubNode* node = head_.load(std::memory_order_acquire); node != nullptr;
       node = node->next) {
    node->sub->close();
  }
}

std::size_t PubSocket::subscriber_count() const {
  std::size_t n = 0;
  for (SubNode* node = head_.load(std::memory_order_acquire); node != nullptr;
       node = node->next) {
    ++n;
  }
  return n;
}

}  // namespace ruru
