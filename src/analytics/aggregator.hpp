#pragma once
// Aggregation "by source and destination locations, and AS numbers"
// (§1/§2 of the paper): running latency statistics per location pair and
// per AS pair, suitable for the Grafana-style views and the anomaly
// detectors.  Thread-safe (fed from enrichment workers).
//
// The hot path keys pairs on packed interned ids (or ASNs), not strings:
// adding a sample to an already-seen pair touches no allocator.  Keys are
// turned back into "src|dst" text only when a summary snapshot is taken.

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "analytics/enriched_sample.hpp"
#include "util/histogram.hpp"

namespace ruru {

struct PairStats {
  std::uint64_t connections = 0;
  Histogram total_latency;     // ns
  Histogram internal_latency;  // ns
  Histogram external_latency;  // ns
};

struct PairSummary {
  std::string key;  ///< "src|dst"
  std::uint64_t connections = 0;
  Duration min_total, median_total, mean_total, max_total, p99_total;
};

class LatencyAggregator {
 public:
  /// Key choice: city pair or AS pair.
  enum class Mode { kCityPair, kAsPair, kCountryPair };

  explicit LatencyAggregator(Mode mode) : mode_(mode) {}

  void add(const EnrichedSample& sample);

  /// Snapshot of all pairs sorted by connection count (descending).
  [[nodiscard]] std::vector<PairSummary> summaries() const;

  [[nodiscard]] std::uint64_t total_connections() const;
  [[nodiscard]] std::size_t pair_count() const;

 private:
  /// Half-key for one endpoint: interned name id, ASN, or kUnlocated.
  [[nodiscard]] std::uint32_t endpoint_id(const GeoInfo& g) const;
  /// Renders one half-key at snapshot time.
  [[nodiscard]] std::string endpoint_name(std::uint32_t id) const;

  Mode mode_;
  mutable std::mutex mu_;
  std::map<std::uint64_t, PairStats> pairs_;  // (client_id << 32) | server_id
};

}  // namespace ruru
