#include "analytics/aggregator.hpp"

#include <algorithm>

namespace ruru {

namespace {

/// Endpoint half-key for "no covering geo record".  Interner ids are
/// dense and small; ASNs are 32-bit but the registry tops out far below
/// this, so the sentinel cannot collide with a real id.
constexpr std::uint32_t kUnlocated = 0xFFFFFFFFu;

}  // namespace

std::uint32_t LatencyAggregator::endpoint_id(const GeoInfo& g) const {
  switch (mode_) {
    case Mode::kCityPair:
      return g.located ? g.city_id : kUnlocated;
    case Mode::kAsPair:
      return g.asn;
    case Mode::kCountryPair:
      return g.located ? g.country_id : kUnlocated;
  }
  return kUnlocated;
}

std::string LatencyAggregator::endpoint_name(std::uint32_t id) const {
  if (mode_ == Mode::kAsPair) return "AS" + std::to_string(id);
  if (id == kUnlocated) return "?";
  return std::string(geo_names().view(id));
}

void LatencyAggregator::add(const EnrichedSample& sample) {
  const std::uint64_t key =
      (std::uint64_t{endpoint_id(sample.client)} << 32) | endpoint_id(sample.server);
  std::lock_guard lock(mu_);
  PairStats& p = pairs_[key];
  ++p.connections;
  p.total_latency.record(sample.total);
  p.internal_latency.record(sample.internal);
  p.external_latency.record(sample.external);
}

std::vector<PairSummary> LatencyAggregator::summaries() const {
  std::vector<PairSummary> out;
  {
    std::lock_guard lock(mu_);
    out.reserve(pairs_.size());
    for (const auto& [key, stats] : pairs_) {
      PairSummary s;
      s.key = endpoint_name(static_cast<std::uint32_t>(key >> 32)) + "|" +
              endpoint_name(static_cast<std::uint32_t>(key));
      s.connections = stats.connections;
      s.min_total = Duration{stats.total_latency.min()};
      s.max_total = Duration{stats.total_latency.max()};
      s.median_total = Duration{stats.total_latency.percentile(0.5)};
      s.mean_total = Duration{static_cast<std::int64_t>(stats.total_latency.mean())};
      s.p99_total = Duration{stats.total_latency.percentile(0.99)};
      out.push_back(std::move(s));
    }
  }
  std::sort(out.begin(), out.end(), [](const PairSummary& a, const PairSummary& b) {
    return a.connections != b.connections ? a.connections > b.connections : a.key < b.key;
  });
  return out;
}

std::uint64_t LatencyAggregator::total_connections() const {
  std::lock_guard lock(mu_);
  std::uint64_t n = 0;
  for (const auto& [key, stats] : pairs_) n += stats.connections;
  return n;
}

std::size_t LatencyAggregator::pair_count() const {
  std::lock_guard lock(mu_);
  return pairs_.size();
}

}  // namespace ruru
