#include "analytics/aggregator.hpp"

#include <algorithm>

namespace ruru {

std::string LatencyAggregator::key_for(const EnrichedSample& s) const {
  switch (mode_) {
    case Mode::kCityPair:
      return (s.client.located ? s.client.city : "?") + "|" +
             (s.server.located ? s.server.city : "?");
    case Mode::kAsPair:
      return "AS" + std::to_string(s.client.asn) + "|AS" + std::to_string(s.server.asn);
    case Mode::kCountryPair:
      return (s.client.located ? s.client.country : "?") + "|" +
             (s.server.located ? s.server.country : "?");
  }
  return "?";
}

void LatencyAggregator::add(const EnrichedSample& sample) {
  const std::string key = key_for(sample);
  std::lock_guard lock(mu_);
  PairStats& p = pairs_[key];
  ++p.connections;
  p.total_latency.record(sample.total);
  p.internal_latency.record(sample.internal);
  p.external_latency.record(sample.external);
}

std::vector<PairSummary> LatencyAggregator::summaries() const {
  std::vector<PairSummary> out;
  {
    std::lock_guard lock(mu_);
    out.reserve(pairs_.size());
    for (const auto& [key, stats] : pairs_) {
      PairSummary s;
      s.key = key;
      s.connections = stats.connections;
      s.min_total = Duration{stats.total_latency.min()};
      s.max_total = Duration{stats.total_latency.max()};
      s.median_total = Duration{stats.total_latency.percentile(0.5)};
      s.mean_total = Duration{static_cast<std::int64_t>(stats.total_latency.mean())};
      s.p99_total = Duration{stats.total_latency.percentile(0.99)};
      out.push_back(std::move(s));
    }
  }
  std::sort(out.begin(), out.end(), [](const PairSummary& a, const PairSummary& b) {
    return a.connections != b.connections ? a.connections > b.connections : a.key < b.key;
  });
  return out;
}

std::uint64_t LatencyAggregator::total_connections() const {
  std::lock_guard lock(mu_);
  std::uint64_t n = 0;
  for (const auto& [key, stats] : pairs_) n += stats.connections;
  return n;
}

std::size_t LatencyAggregator::pair_count() const {
  std::lock_guard lock(mu_);
  return pairs_.size();
}

}  // namespace ruru
