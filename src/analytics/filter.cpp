#include "analytics/filter.hpp"

namespace ruru {

SampleFilter SampleFilter::country(std::string country_code) {
  // Intern the comparand once at construction; the predicate then runs
  // as two integer compares per sample (the interner dedupes, so a
  // country loaded by any DB resolves to the same id).
  const std::uint32_t code_id = geo_names().intern(country_code);
  return SampleFilter("country=" + country_code, [code_id](const EnrichedSample& s) {
    return s.client.country_id == code_id || s.server.country_id == code_id;
  });
}

SampleFilter SampleFilter::city(std::string city_name) {
  const std::uint32_t city_id = geo_names().intern(city_name);
  return SampleFilter("city=" + city_name, [city_id](const EnrichedSample& s) {
    return s.client.city_id == city_id || s.server.city_id == city_id;
  });
}

SampleFilter SampleFilter::asn(std::uint32_t asn) {
  return SampleFilter("asn=" + std::to_string(asn), [asn](const EnrichedSample& s) {
    return s.client.asn == asn || s.server.asn == asn;
  });
}

SampleFilter SampleFilter::latency_between(Duration lo, Duration hi) {
  return SampleFilter("latency[" + to_string(lo) + "," + to_string(hi) + ")",
                      [lo, hi](const EnrichedSample& s) { return s.total >= lo && s.total < hi; });
}

SampleFilter SampleFilter::latency_at_least(Duration threshold) {
  return SampleFilter("latency>=" + to_string(threshold),
                      [threshold](const EnrichedSample& s) { return s.total >= threshold; });
}

SampleFilter SampleFilter::server_in_box(double lat_min, double lat_max, double lon_min,
                                         double lon_max) {
  return SampleFilter("server_in_box",
                      [=](const EnrichedSample& s) {
                        return s.server.located && s.server.latitude >= lat_min &&
                               s.server.latitude <= lat_max && s.server.longitude >= lon_min &&
                               s.server.longitude <= lon_max;
                      });
}

}  // namespace ruru
