#include "analytics/filter.hpp"

namespace ruru {

SampleFilter SampleFilter::country(std::string country_code) {
  // Name computed before the lambda captures-by-move (argument
  // evaluation order is unspecified).
  std::string name = "country=" + country_code;
  return SampleFilter(std::move(name),
                      [code = std::move(country_code)](const EnrichedSample& s) {
                        return s.client.country == code || s.server.country == code;
                      });
}

SampleFilter SampleFilter::city(std::string city_name) {
  std::string name = "city=" + city_name;
  return SampleFilter(std::move(name), [n = std::move(city_name)](const EnrichedSample& s) {
    return s.client.city == n || s.server.city == n;
  });
}

SampleFilter SampleFilter::asn(std::uint32_t asn) {
  return SampleFilter("asn=" + std::to_string(asn), [asn](const EnrichedSample& s) {
    return s.client.asn == asn || s.server.asn == asn;
  });
}

SampleFilter SampleFilter::latency_between(Duration lo, Duration hi) {
  return SampleFilter("latency[" + to_string(lo) + "," + to_string(hi) + ")",
                      [lo, hi](const EnrichedSample& s) { return s.total >= lo && s.total < hi; });
}

SampleFilter SampleFilter::latency_at_least(Duration threshold) {
  return SampleFilter("latency>=" + to_string(threshold),
                      [threshold](const EnrichedSample& s) { return s.total >= threshold; });
}

SampleFilter SampleFilter::server_in_box(double lat_min, double lat_max, double lon_min,
                                         double lon_max) {
  return SampleFilter("server_in_box",
                      [=](const EnrichedSample& s) {
                        return s.server.located && s.server.latitude >= lat_min &&
                               s.server.latitude <= lat_max && s.server.longitude >= lon_min &&
                               s.server.longitude <= lon_max;
                      });
}

}  // namespace ruru
