#pragma once
// Ruru Analytics worker pool: the multi-threaded stage of Figure 2 that
// consumes latency measurements from the bus, enriches them, strips IPs
// and fans the result out to downstream sinks (TSDB writer, WebSocket
// feed, anomaly detectors).

#include <atomic>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "analytics/enricher.hpp"
#include "msg/codec.hpp"
#include "msg/pubsub.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace ruru {

/// Per-worker observability hooks (one shard per pool thread).
/// Default-constructed handles are inert; a pool without hooks takes no
/// timestamps at all.
struct PoolObs {
  obs::HistogramHandle queue_wait;   ///< bus publish -> dequeue, ns
  obs::HistogramHandle enrich_batch; ///< decode+enrich+sinks per message, ns
  obs::HistogramHandle transit;      ///< sampled publish -> sinks-done, ns
  std::uint32_t transit_sample_every = 16;  ///< record 1-in-N messages
  /// Flight recorder: this worker's span ring + the 1-in-N rate used to
  /// re-derive per-sample trace ids after decode (the id is not on the
  /// wire).  Inert handle / 0 = tracing off for this worker.
  obs::TraceHandle trace;
  std::uint32_t trace_sample_n = 0;
};

class EnrichmentPool {
 public:
  using Sink = std::function<void(const EnrichedSample&)>;
  /// Built once per worker thread at start; `index` is the worker slot,
  /// used as the histogram shard id.
  using ObsFactory = std::function<PoolObs(std::size_t index)>;

  /// `source`: a bus subscription carrying latency payloads — v1
  /// single-sample (encode_latency_sample) and v2 batch
  /// (encode_latency_batch) messages are both consumed. Each of the
  /// `threads` workers owns its own Enricher (separate LRU caches, no
  /// sharing). `geo6` optional (may be null).
  EnrichmentPool(std::shared_ptr<Subscription> source, const GeoDatabase& geo,
                 const AsDatabase& as, std::size_t threads,
                 const Geo6Database* geo6 = nullptr);
  ~EnrichmentPool();

  EnrichmentPool(const EnrichmentPool&) = delete;
  EnrichmentPool& operator=(const EnrichmentPool&) = delete;

  /// Register before start(); sinks are invoked from worker threads and
  /// must be thread-safe.
  void add_sink(Sink sink) { sinks_.push_back(std::move(sink)); }

  /// Install before start(). Each worker calls the factory once with its
  /// index, so histograms shard per thread (single writer per shard).
  void set_obs_factory(ObsFactory factory) { obs_factory_ = std::move(factory); }

  /// CPU pins for the pool's threads, one per worker slot (shorter lists
  /// leave the tail unpinned; kNoCpuPin skips a slot). Best-effort, like
  /// LcoreLauncher: failures are counted, never fatal. Call before
  /// start().
  void set_pin_cpus(std::vector<int> cpus) { pin_cpus_ = std::move(cpus); }

  /// Threads whose affinity was applied / could not be applied.
  [[nodiscard]] std::size_t pinned() const { return pinned_.load(); }
  [[nodiscard]] std::size_t pin_failures() const { return pin_failures_.load(); }

  /// Sharded inbox (default on): when the subscription has fan-in
  /// lanes, worker w consumes only lanes where lane % threads == w via
  /// recv_shard — uncontended SPSC pops, and each flow (RSS-pinned to
  /// one publisher lane) stays on one worker, in order.  Off = all
  /// workers share one MPMC scan of every lane.  Call before start().
  void set_shard_inbox(bool on) { shard_inbox_ = on; }

  void start();
  /// Waits for the subscription to drain (after its publisher closes it)
  /// and joins the workers.
  void stop();

  /// Samples enriched (a batched message counts all its samples).
  [[nodiscard]] std::uint64_t processed() const { return processed_.load(); }
  /// Messages (not samples) whose payload was rejected.
  [[nodiscard]] std::uint64_t decode_failures() const { return decode_failures_.load(); }
  /// Aggregated cache stats across workers (valid after stop()).
  [[nodiscard]] EnricherStats combined_stats() const;

 private:
  void worker_main(std::size_t index);

  std::shared_ptr<Subscription> source_;
  const GeoDatabase& geo_;
  const AsDatabase& as_;
  std::size_t thread_count_;
  std::vector<Sink> sinks_;
  ObsFactory obs_factory_;
  std::vector<int> pin_cpus_;
  std::atomic<std::size_t> pinned_{0};
  std::atomic<std::size_t> pin_failures_{0};
  std::vector<std::thread> threads_;
  std::vector<std::unique_ptr<Enricher>> enrichers_;
  std::atomic<std::uint64_t> processed_{0};
  std::atomic<std::uint64_t> decode_failures_{0};
  bool shard_inbox_ = true;
  bool started_ = false;
};

}  // namespace ruru
