#include "analytics/pool.hpp"

#include "driver/eal.hpp"
#include "obs/tsc_clock.hpp"

namespace ruru {

EnrichmentPool::EnrichmentPool(std::shared_ptr<Subscription> source, const GeoDatabase& geo,
                               const AsDatabase& as, std::size_t threads,
                               const Geo6Database* geo6)
    : source_(std::move(source)), geo_(geo), as_(as), thread_count_(threads == 0 ? 1 : threads) {
  enrichers_.reserve(thread_count_);
  for (std::size_t i = 0; i < thread_count_; ++i) {
    auto enricher = std::make_unique<Enricher>(geo_, as_);
    enricher->set_geo6(geo6);
    enrichers_.push_back(std::move(enricher));
  }
}

EnrichmentPool::~EnrichmentPool() { stop(); }

void EnrichmentPool::start() {
  if (started_) return;
  started_ = true;
  threads_.reserve(thread_count_);
  for (std::size_t i = 0; i < thread_count_; ++i) {
    threads_.emplace_back([this, i] {
      if (i < pin_cpus_.size() && pin_cpus_[i] != kNoCpuPin) {
        if (LcoreLauncher::pin_self(pin_cpus_[i])) {
          pinned_.fetch_add(1, std::memory_order_relaxed);
        } else {
          pin_failures_.fetch_add(1, std::memory_order_relaxed);
        }
      }
      worker_main(i);
    });
  }
}

void EnrichmentPool::stop() {
  for (auto& t : threads_) {
    if (t.joinable()) t.join();
  }
  threads_.clear();
}

void EnrichmentPool::worker_main(std::size_t index) {
  Enricher& enricher = *enrichers_[index];
  const PoolObs obs = obs_factory_ ? obs_factory_(index) : PoolObs{};
  // Only take timestamps when someone is listening; an uninstrumented
  // pool runs the original loop byte for byte.  Timestamps come from
  // the calibrated TSC clock — the same timebase publishers stamp
  // enqueued_at with and trace spans use, so queue-wait and span
  // arithmetic never mix clock domains (and never see NTP slew).
  const bool timed = obs.queue_wait.attached() || obs.enrich_batch.attached() ||
                     obs.transit.attached();
  const bool tracing = obs.trace.attached() && obs.trace_sample_n != 0;
  const obs::TscClock& clock = obs::trace_clock();
  std::uint64_t message_count = 0;
  // Reused decode buffer: one batch decode per message, no per-sample
  // allocation.
  std::vector<LatencySample> samples;
  samples.reserve(kMaxLatencyBatch);
  // Reused enrichment output buffer — EnrichedSample is trivially
  // copyable, so the batch path never touches the allocator in steady
  // state.
  std::vector<EnrichedSample> enriched;
  enriched.reserve(kMaxLatencyBatch);
  // Sharded inbox: with fan-in lanes each worker owns its slice of the
  // lanes (SPSC pops, per-flow ordering); recv_shard degrades to recv()
  // when the topology has no lanes or the pool has one thread.
  const bool sharded = shard_inbox_ && thread_count_ > 1 && source_->lanes() > 0;
  while (true) {
    auto msg = sharded ? source_->recv_shard(index, thread_count_)
                       : source_->recv();  // blocking; nullopt == closed and drained
    if (!msg) break;
    // A batch with no traced samples short-circuits on the message's
    // trace_id flag; per-sample work below only runs for traced batches.
    const bool traced_msg = tracing && msg->trace_id != 0;
    Timestamp dequeued{};
    if (timed || traced_msg) {
      dequeued = clock.now();
      if (timed && msg->enqueued_at.ns != 0) {
        obs.queue_wait.record(dequeued - msg->enqueued_at);
      }
    }
    samples.clear();
    if (msg->frames.size() < 2 || !decode_latency_payload(msg->frames[1], samples)) {
      decode_failures_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    if (traced_msg) {
      // Re-derive per-sample ids from the serialized RSS hash (the id
      // itself never crosses the wire) so enrichment output carries them.
      for (LatencySample& s : samples) {
        s.trace_id = obs::trace_id_for(s.rss_hash, obs.trace_sample_n);
      }
    }
    enriched.clear();
    enricher.enrich_batch(samples, enriched);
    for (const EnrichedSample& sample : enriched) {
      for (const auto& sink : sinks_) sink(sample);
    }
    // processed() counts samples, not messages, so pipeline accounting
    // stays truthful when the feed batches.
    processed_.fetch_add(samples.size(), std::memory_order_relaxed);
    if (timed || traced_msg) {
      const Timestamp done = clock.now();
      if (timed) {
        obs.enrich_batch.record(done - dequeued);
        // Sampled end-to-end transit: publish stamp -> sinks complete.
        ++message_count;
        const std::uint64_t every =
            obs.transit_sample_every == 0 ? 1 : obs.transit_sample_every;
        if (msg->enqueued_at.ns != 0 && message_count % every == 0) {
          obs.transit.record(done - msg->enqueued_at);
        }
      }
      if (traced_msg) {
        const std::uint16_t shard = static_cast<std::uint16_t>(index);
        for (const LatencySample& s : samples) {
          if (s.trace_id == 0) continue;
          // bus span: publish stamp -> dequeue; enrich span: dequeue ->
          // sinks done.  Batch-level times attributed to each traced
          // sample — per-sample timing would mean a TSC read per sample.
          if (msg->enqueued_at.ns != 0) {
            obs.trace.span(obs::TraceStage::kBus, s.trace_id, msg->enqueued_at.ns,
                           (dequeued - msg->enqueued_at).ns,
                           static_cast<std::uint32_t>(samples.size()), shard);
          }
          obs.trace.span(obs::TraceStage::kEnrich, s.trace_id, dequeued.ns,
                         (done - dequeued).ns, static_cast<std::uint32_t>(samples.size()),
                         shard);
        }
      }
    }
  }
}

EnricherStats EnrichmentPool::combined_stats() const {
  EnricherStats total;
  for (const auto& e : enrichers_) {
    const auto& s = e->stats();
    total.enriched += s.enriched;
    total.unlocated += s.unlocated;
    total.cache_hits += s.cache_hits;
    total.cache_misses += s.cache_misses;
  }
  return total;
}

}  // namespace ruru
