#pragma once
// Geo/AS-enriched latency record — what leaves Ruru Analytics.
//
// Privacy by construction: per §2 of the paper, "all original IP
// addresses are removed" after enrichment.  EnrichedSample therefore has
// no address fields at all; downstream consumers (TSDB, frontends) can
// only see locations and AS numbers.

#include <cstdint>
#include <string>

#include "util/time.hpp"

namespace ruru {

struct GeoInfo {
  std::string city;
  std::string country;
  double latitude = 0.0;
  double longitude = 0.0;
  std::uint32_t asn = 0;
  std::string as_org;
  bool located = true;  ///< false when the DB had no covering range
};

struct EnrichedSample {
  GeoInfo client;  ///< handshake initiator's location
  GeoInfo server;

  Duration internal;  ///< tap -> client -> tap
  Duration external;  ///< tap -> server -> tap
  Duration total;     ///< end-to-end RTT

  Timestamp started_at;    ///< time of the first SYN at the tap
  Timestamp completed_at;  ///< time of the handshake ACK at the tap
  std::uint16_t queue_id = 0;
};

}  // namespace ruru
