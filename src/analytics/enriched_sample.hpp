#pragma once
// Geo/AS-enriched latency record — what leaves Ruru Analytics.
//
// Privacy by construction: per §2 of the paper, "all original IP
// addresses are removed" after enrichment.  EnrichedSample therefore has
// no address fields at all; downstream consumers (TSDB, frontends) can
// only see locations and AS numbers.
//
// Both structs are trivially copyable PODs: names are carried as interned
// u32 ids into the process-wide geo_names() table (populated at DB load),
// so enriching a sample and handing it to every sink allocates nothing.
// Sinks resolve ids to strings only at format time via the accessors.

#include <cstdint>
#include <string_view>
#include <type_traits>

#include "flow/latency_sample.hpp"
#include "geo/interner.hpp"
#include "util/time.hpp"

namespace ruru {

struct GeoInfo {
  double latitude = 0.0;
  double longitude = 0.0;
  std::uint32_t country_id = 0;  ///< geo_names() id; 0 == empty string
  std::uint32_t city_id = 0;
  std::uint32_t asn = 0;
  std::uint32_t org_id = 0;
  bool located = true;  ///< false when the DB had no covering range

  /// Format-time name resolution (string_views into the interner arena,
  /// valid for the process lifetime).
  [[nodiscard]] std::string_view city() const { return geo_names().view(city_id); }
  [[nodiscard]] std::string_view country() const { return geo_names().view(country_id); }
  [[nodiscard]] std::string_view as_org() const { return geo_names().view(org_id); }
};

struct EnrichedSample {
  GeoInfo client;  ///< handshake initiator's location
  GeoInfo server;

  Duration internal;  ///< tap -> client -> tap
  Duration external;  ///< tap -> server -> tap
  Duration total;     ///< end-to-end RTT

  Timestamp started_at;    ///< time of the first SYN at the tap
  Timestamp completed_at;  ///< time of the handshake ACK at the tap
  std::uint16_t queue_id = 0;
  /// Flight-recorder id carried from the LatencySample (0 = untraced).
  /// Still POD — the id is a u32, never a pointer into tracer state.
  std::uint32_t trace_id = 0;
  /// Carried from the LatencySample: handshake vs in-flow vs one-sided.
  /// For in-flow kinds only one of internal/external is a measurement
  /// (toward_client picks which); the other is zero.
  SampleKind kind = SampleKind::kHandshake;
  bool toward_client = false;
};

// The whole enrichment output must stay allocation-free to copy: a
// string or vector member sneaking in here re-introduces a malloc per
// sample per sink.
static_assert(std::is_trivially_copyable_v<GeoInfo>);
static_assert(std::is_trivially_copyable_v<EnrichedSample>);

}  // namespace ruru
