#include "analytics/enricher.hpp"

namespace ruru {

namespace {

/// How far ahead enrich_batch() warms cache sets and radix buckets.
/// Far enough to cover one DRAM round trip at a few ns/sample, near
/// enough that the lines are still resident when the walk arrives.
constexpr std::size_t kLookahead = 8;

}  // namespace

GeoInfo Enricher::locate_uncached(const IpAddress& addr) const {
  GeoInfo info;
  if (addr.is_v4()) {
    const std::size_t g = geo_.find(addr.v4);
    if (g != GeoDatabase::npos) {
      info.city_id = geo_.city_id(g);
      info.country_id = geo_.country_id(g);
      info.latitude = geo_.latitude(g);
      info.longitude = geo_.longitude(g);
    } else {
      info.located = false;
    }
    const std::size_t a = as_.find(addr.v4);
    if (a != AsDatabase::npos) {
      info.asn = as_.asn(a);
      info.org_id = as_.org_id(a);
    }
    return info;
  }
  if (geo6_ != nullptr) {
    const std::size_t g = geo6_->find(addr.v6);
    if (g != Geo6Database::npos) {
      info.city_id = geo6_->city_id(g);
      info.country_id = geo6_->country_id(g);
      info.latitude = geo6_->latitude(g);
      info.longitude = geo6_->longitude(g);
      info.asn = geo6_->asn(g);
      info.org_id = geo6_->org_id(g);
      return info;
    }
  }
  info.located = false;
  return info;
}

GeoInfo Enricher::locate(const IpAddress& addr) {
  const GeoCacheKey key = GeoCacheKey::of(addr);
  if (const GeoInfo* cached = cache_.find(key)) {
    ++stats_.cache_hits;
    return *cached;
  }
  ++stats_.cache_misses;
  const GeoInfo info = locate_uncached(addr);
  *cache_.insert(key) = info;  // negative results cached too
  return info;
}

EnrichedSample Enricher::enrich(const LatencySample& sample) {
  EnrichedSample out;
  out.client = locate(sample.client);
  out.server = locate(sample.server);
  out.internal = sample.internal();
  out.external = sample.external();
  out.total = sample.total();
  out.started_at = sample.syn_time;
  out.completed_at = sample.ack_time;
  out.queue_id = sample.queue_id;
  out.trace_id = sample.trace_id;
  out.kind = sample.kind;
  out.toward_client = sample.toward_client;
  ++stats_.enriched;
  if (!out.client.located || !out.server.located) ++stats_.unlocated;
  // The LatencySample (with its IP addresses) dies here: nothing beyond
  // this point carries an address.
  return out;
}

void Enricher::enrich_batch(std::span<const LatencySample> batch,
                            std::vector<EnrichedSample>& out) {
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (i + kLookahead < batch.size()) {
      const LatencySample& ahead = batch[i + kLookahead];
      cache_.prefetch(GeoCacheKey::of(ahead.client));
      cache_.prefetch(GeoCacheKey::of(ahead.server));
      if (ahead.client.is_v4()) geo_.prefetch(ahead.client.v4);
      if (ahead.server.is_v4()) geo_.prefetch(ahead.server.v4);
    }
    out.push_back(enrich(batch[i]));
  }
}

}  // namespace ruru
