#include "analytics/enricher.hpp"

namespace ruru {

GeoInfo Enricher::locate(const IpAddress& addr) {
  if (!addr.is_v4()) {
    GeoInfo info;
    if (geo6_ != nullptr) {
      if (const Geo6Record* g = geo6_->lookup(addr.v6)) {
        info.city = g->city;
        info.country = g->country;
        info.latitude = g->latitude;
        info.longitude = g->longitude;
        info.asn = g->asn;
        info.as_org = g->as_org;
        return info;  // v6 lookups are uncached (table is tiny)
      }
    }
    info.located = false;
    return info;
  }
  const std::uint32_t key = addr.v4.value();
  if (auto cached = cache_.get(key)) {
    ++stats_.cache_hits;
    return *cached;
  }
  ++stats_.cache_misses;

  GeoInfo info;
  if (const GeoRecord* g = geo_.lookup(addr.v4)) {
    info.city = g->city;
    info.country = g->country;
    info.latitude = g->latitude;
    info.longitude = g->longitude;
  } else {
    info.located = false;
  }
  if (const AsRecord* a = as_.lookup(addr.v4)) {
    info.asn = a->asn;
    info.as_org = a->organization;
  }
  cache_.put(key, info);
  return info;
}

EnrichedSample Enricher::enrich(const LatencySample& sample) {
  EnrichedSample out;
  out.client = locate(sample.client);
  out.server = locate(sample.server);
  out.internal = sample.internal();
  out.external = sample.external();
  out.total = sample.total();
  out.started_at = sample.syn_time;
  out.completed_at = sample.ack_time;
  out.queue_id = sample.queue_id;
  ++stats_.enriched;
  if (!out.client.located || !out.server.located) ++stats_.unlocated;
  // The LatencySample (with its IP addresses) dies here: nothing beyond
  // this point carries an address.
  return out;
}

}  // namespace ruru
