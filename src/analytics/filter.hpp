#pragma once
// Filter module — the extension §2 of the paper calls out explicitly:
// "one could add a filter module to filter measurements in the pipeline
// based on some criteria (e.g., geo-location)".
//
// A FilterChain wraps a set of predicates over EnrichedSample and can be
// interposed in front of any sink; composable criteria cover the cases
// the paper names (geo) plus AS and latency bands.  Counters expose how
// much each stage of the chain passes.

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "analytics/enriched_sample.hpp"

namespace ruru {

class SampleFilter {
 public:
  using Predicate = std::function<bool(const EnrichedSample&)>;

  SampleFilter(std::string name, Predicate pred)
      : name_(std::move(name)), pred_(std::move(pred)) {}

  [[nodiscard]] bool accepts(const EnrichedSample& s) const { return pred_(s); }
  [[nodiscard]] const std::string& name() const { return name_; }

  // --- the criteria the paper's text suggests ---

  /// Either endpoint in `country` (ISO alpha-2).
  static SampleFilter country(std::string country_code);
  /// Either endpoint in `city`.
  static SampleFilter city(std::string city_name);
  /// Either endpoint in AS `asn`.
  static SampleFilter asn(std::uint32_t asn);
  /// Total latency within [lo, hi).
  static SampleFilter latency_between(Duration lo, Duration hi);
  /// Total latency at or above `threshold` (the "red arcs" slice).
  static SampleFilter latency_at_least(Duration threshold);
  /// Great-circle-box filter: server endpoint inside the lat/lon box.
  static SampleFilter server_in_box(double lat_min, double lat_max, double lon_min,
                                    double lon_max);

 private:
  std::string name_;
  Predicate pred_;
};

/// AND-composition of filters with per-stage pass counters, wrapping a
/// downstream sink.
class FilterChain {
 public:
  using Sink = std::function<void(const EnrichedSample&)>;

  explicit FilterChain(Sink sink) : sink_(std::move(sink)) {}

  FilterChain& add(SampleFilter filter) {
    stages_.push_back(Stage{std::move(filter), std::make_unique<std::atomic<std::uint64_t>>(0)});
    return *this;
  }

  /// Feed a sample through the chain; forwarded iff every stage accepts.
  /// Thread-safe (counters are atomic, stages immutable after setup).
  void operator()(const EnrichedSample& s) {
    ++seen_;
    for (const auto& stage : stages_) {
      if (!stage.filter.accepts(s)) return;
      stage.passed->fetch_add(1, std::memory_order_relaxed);
    }
    if (sink_) sink_(s);
    ++forwarded_;
  }

  [[nodiscard]] std::uint64_t seen() const { return seen_.load(); }
  [[nodiscard]] std::uint64_t forwarded() const { return forwarded_.load(); }
  [[nodiscard]] std::uint64_t passed(std::size_t stage) const {
    return stages_.at(stage).passed->load();
  }
  [[nodiscard]] std::size_t stage_count() const { return stages_.size(); }

 private:
  struct Stage {
    SampleFilter filter;
    std::unique_ptr<std::atomic<std::uint64_t>> passed;
  };

  Sink sink_;
  std::vector<Stage> stages_;
  std::atomic<std::uint64_t> seen_{0};
  std::atomic<std::uint64_t> forwarded_{0};
};

}  // namespace ruru
