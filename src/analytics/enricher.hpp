#pragma once
// Geo + AS enrichment of raw latency samples.
//
// Each enrichment worker owns one Enricher: range-DB lookups front-ended
// by a per-worker set-associative FlatCache of POD entries (traffic is
// heavy-tailed over hosts), then the original IPs are dropped.  IPv4 and
// IPv6 both go through the cache, keyed on the full address bits plus a
// family tag so a hit is always exact.  Negative lookups are cached too —
// an unroutable scanner hammering the tap misses the DB once, not every
// packet.

#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "analytics/enriched_sample.hpp"
#include "flow/latency_sample.hpp"
#include "geo/as_db.hpp"
#include "geo/flat_cache.hpp"
#include "geo/geo6_db.hpp"
#include "geo/geo_db.hpp"
#include "util/stat_cell.hpp"

namespace ruru {

/// Exact cache identity of one endpoint address: full 128 bits plus a
/// family tag, so a v4 value can never alias a v6 address (or vice
/// versa) into a false hit.
struct GeoCacheKey {
  std::uint64_t lo = 0;  ///< v4: the 32-bit value; v6: bytes 0..7
  std::uint64_t hi = 0;  ///< v4: 0; v6: bytes 8..15
  std::uint64_t tag = 0;  ///< 1 == v4, 2 == v6

  friend bool operator==(const GeoCacheKey&, const GeoCacheKey&) = default;

  [[nodiscard]] std::uint64_t hash() const {
    std::uint64_t x = lo ^ (hi * 0x9E3779B97F4A7C15ULL) ^ (tag << 56);
    x ^= x >> 33;
    x *= 0xFF51AFD7ED558CCDULL;
    x ^= x >> 33;
    return x;
  }

  static GeoCacheKey of(const IpAddress& addr) {
    GeoCacheKey k;
    if (addr.is_v4()) {
      k.lo = addr.v4.value();
      k.tag = 1;
    } else {
      const auto& b = addr.v6.bytes();
      std::memcpy(&k.lo, b.data(), 8);
      std::memcpy(&k.hi, b.data() + 8, 8);
      k.tag = 2;
    }
    return k;
  }
};

/// Single-writer cells (the owning enrichment thread): readable live by
/// the metrics snapshot thread without tearing.  The cache itself keeps
/// no counters — these are the one source of truth for hit/miss totals.
struct EnricherStats {
  StatCell enriched = 0;
  StatCell unlocated = 0;  ///< at least one endpoint had no geo record
  StatCell cache_hits = 0;
  StatCell cache_misses = 0;
};

class Enricher {
 public:
  Enricher(const GeoDatabase& geo, const AsDatabase& as, std::size_t cache_capacity = 8192)
      : geo_(geo), as_(as), cache_(cache_capacity) {}

  /// Optional IPv6 table (not owned; must outlive the enricher).
  /// Without it, v6 endpoints are marked unlocated.
  void set_geo6(const Geo6Database* geo6) { geo6_ = geo6; }

  [[nodiscard]] EnrichedSample enrich(const LatencySample& sample);

  /// Enriches a decoded batch, appending to `out` (caller clears/reuses
  /// the vector across batches, so steady state does not allocate).
  /// Cache sets and geo radix buckets for samples a few slots ahead are
  /// prefetched while the current sample is resolved.
  void enrich_batch(std::span<const LatencySample> batch, std::vector<EnrichedSample>& out);

  [[nodiscard]] GeoInfo locate(const IpAddress& addr);

  [[nodiscard]] const EnricherStats& stats() const { return stats_; }

 private:
  [[nodiscard]] GeoInfo locate_uncached(const IpAddress& addr) const;

  const GeoDatabase& geo_;
  const AsDatabase& as_;
  const Geo6Database* geo6_ = nullptr;
  FlatCache<GeoCacheKey, GeoInfo> cache_;
  EnricherStats stats_;
};

}  // namespace ruru
