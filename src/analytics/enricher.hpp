#pragma once
// Geo + AS enrichment of raw latency samples.
//
// Each enrichment worker owns one Enricher: range-DB lookups front-ended
// by per-worker LRU caches (traffic is heavy-tailed over hosts), then
// the original IPs are dropped.  IPv6 samples are marked unlocated — the
// synthetic DBs are IPv4, like IP2Location LITE's v4 table.

#include <cstdint>

#include "analytics/enriched_sample.hpp"
#include "flow/latency_sample.hpp"
#include "geo/as_db.hpp"
#include "geo/geo6_db.hpp"
#include "geo/geo_db.hpp"
#include "geo/lru_cache.hpp"
#include "util/stat_cell.hpp"

namespace ruru {

/// Single-writer cells (the owning enrichment thread): readable live by
/// the metrics snapshot thread without tearing.
struct EnricherStats {
  StatCell enriched = 0;
  StatCell unlocated = 0;  ///< at least one endpoint had no geo record
  StatCell cache_hits = 0;
  StatCell cache_misses = 0;
};

class Enricher {
 public:
  Enricher(const GeoDatabase& geo, const AsDatabase& as, std::size_t cache_capacity = 8192)
      : geo_(geo), as_(as), cache_(cache_capacity) {}

  /// Optional IPv6 table (not owned; must outlive the enricher).
  /// Without it, v6 endpoints are marked unlocated.
  void set_geo6(const Geo6Database* geo6) { geo6_ = geo6; }

  [[nodiscard]] EnrichedSample enrich(const LatencySample& sample);

  [[nodiscard]] GeoInfo locate(const IpAddress& addr);

  [[nodiscard]] const EnricherStats& stats() const { return stats_; }

 private:
  const GeoDatabase& geo_;
  const AsDatabase& as_;
  const Geo6Database* geo6_ = nullptr;
  LruCache<std::uint32_t, GeoInfo> cache_;  // keyed on the IPv4 value
  EnricherStats stats_;
};

}  // namespace ruru
