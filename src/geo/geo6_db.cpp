#include "geo/geo6_db.hpp"

#include <algorithm>

#include "geo/world.hpp"

namespace ruru {

Result<Geo6Database> Geo6Database::build(std::vector<Geo6Record> records) {
  std::sort(records.begin(), records.end(), [](const Geo6Record& a, const Geo6Record& b) {
    return a.range_start.bytes() < b.range_start.bytes();
  });
  for (std::size_t i = 0; i < records.size(); ++i) {
    if (records[i].range_end.bytes() < records[i].range_start.bytes()) {
      return make_error("geo6: record " + std::to_string(i) + " has end < start");
    }
    if (i > 0 && !(records[i - 1].range_end.bytes() < records[i].range_start.bytes())) {
      return make_error("geo6: overlapping ranges at index " + std::to_string(i));
    }
  }
  Geo6Database db;
  db.records_ = std::move(records);
  return db;
}

const Geo6Record* Geo6Database::lookup(const Ipv6Address& addr) const {
  const auto& key = addr.bytes();
  auto it = std::upper_bound(records_.begin(), records_.end(), key,
                             [](const std::array<std::uint8_t, 16>& value, const Geo6Record& r) {
                               return value < r.range_start.bytes();
                             });
  if (it == records_.begin()) return nullptr;
  --it;
  if (key < it->range_start.bytes() || it->range_end.bytes() < key) return nullptr;
  return &*it;
}

Result<Geo6Database> derive_geo6(std::span<const SiteSpec> sites,
                                 std::array<std::uint8_t, 12> prefix) {
  std::vector<Geo6Record> records;
  records.reserve(sites.size());
  auto embed = [&prefix](std::uint32_t v4) {
    std::array<std::uint8_t, 16> b{};
    std::copy(prefix.begin(), prefix.end(), b.begin());
    b[12] = static_cast<std::uint8_t>(v4 >> 24);
    b[13] = static_cast<std::uint8_t>(v4 >> 16);
    b[14] = static_cast<std::uint8_t>(v4 >> 8);
    b[15] = static_cast<std::uint8_t>(v4);
    return Ipv6Address(b);
  };
  for (const auto& s : sites) {
    Geo6Record r;
    r.range_start = embed(s.block_start);
    r.range_end = embed(s.block_start + s.block_size - 1);
    r.country = s.country;
    r.city = s.city;
    r.latitude = s.latitude;
    r.longitude = s.longitude;
    r.asn = s.asn;
    r.as_org = s.organization.empty() ? ("AS" + std::to_string(s.asn) + " Net") : s.organization;
    records.push_back(std::move(r));
  }
  return Geo6Database::build(std::move(records));
}

}  // namespace ruru
