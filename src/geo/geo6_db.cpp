#include "geo/geo6_db.hpp"

#include <algorithm>
#include <cstring>

#include "geo/db_io.hpp"
#include "geo/world.hpp"

namespace ruru {

namespace {

constexpr std::uint32_t kMagic = 0x364F4547;  // "GEO6"
constexpr std::uint32_t kVersion = 1;
// start + end + two empty strings + lat + lon + asn + empty org string.
constexpr std::size_t kMinRecordBytes = 16 + 16 + 4 + 4 + 8 + 8 + 4 + 4;

}  // namespace

Result<Geo6Database> Geo6Database::build(std::vector<Geo6Record> records) {
  std::sort(records.begin(), records.end(), [](const Geo6Record& a, const Geo6Record& b) {
    return a.range_start.bytes() < b.range_start.bytes();
  });
  for (std::size_t i = 0; i < records.size(); ++i) {
    if (records[i].range_end.bytes() < records[i].range_start.bytes()) {
      return make_error("geo6: record " + std::to_string(i) + " has end < start");
    }
    if (i > 0 && !(records[i - 1].range_end.bytes() < records[i].range_start.bytes())) {
      return make_error("geo6: overlapping ranges at index " + std::to_string(i));
    }
  }
  Geo6Database db;
  const std::size_t n = records.size();
  db.starts_.reserve(n);
  db.ends_.reserve(n);
  db.country_id_.reserve(n);
  db.city_id_.reserve(n);
  db.lat_.reserve(n);
  db.lon_.reserve(n);
  db.asn_.reserve(n);
  db.org_id_.reserve(n);
  StringInterner& names = geo_names();
  for (const Geo6Record& r : records) {
    db.starts_.push_back(r.range_start.bytes());
    db.ends_.push_back(r.range_end.bytes());
    db.country_id_.push_back(names.intern(r.country));
    db.city_id_.push_back(names.intern(r.city));
    db.lat_.push_back(r.latitude);
    db.lon_.push_back(r.longitude);
    db.asn_.push_back(r.asn);
    db.org_id_.push_back(names.intern(r.as_org));
  }
  return db;
}

std::size_t Geo6Database::find(const Ipv6Address& addr) const {
  const Key& key = addr.bytes();
  auto it = std::upper_bound(starts_.begin(), starts_.end(), key);
  if (it == starts_.begin()) return npos;
  const std::size_t i = static_cast<std::size_t>(it - starts_.begin()) - 1;
  if (key < starts_[i] || ends_[i] < key) return npos;
  return i;
}

Geo6Record Geo6Database::record(std::size_t i) const {
  Geo6Record r;
  r.range_start = Ipv6Address(starts_[i]);
  r.range_end = Ipv6Address(ends_[i]);
  r.country = std::string(geo_names().view(country_id_[i]));
  r.city = std::string(geo_names().view(city_id_[i]));
  r.latitude = lat_[i];
  r.longitude = lon_[i];
  r.asn = asn_[i];
  r.as_org = std::string(geo_names().view(org_id_[i]));
  return r;
}

Status Geo6Database::save(const std::string& path) const {
  std::vector<std::uint8_t> out;
  out.reserve(64 + size() * 96);
  geo_io::put_u32(out, kMagic);
  geo_io::put_u32(out, kVersion);
  geo_io::put_u32(out, static_cast<std::uint32_t>(size()));
  for (std::size_t i = 0; i < size(); ++i) {
    geo_io::put_bytes(out, starts_[i].data(), 16);
    geo_io::put_bytes(out, ends_[i].data(), 16);
    geo_io::put_str(out, geo_names().view(country_id_[i]));
    geo_io::put_str(out, geo_names().view(city_id_[i]));
    geo_io::put_f64(out, lat_[i]);
    geo_io::put_f64(out, lon_[i]);
    geo_io::put_u32(out, asn_[i]);
    geo_io::put_str(out, geo_names().view(org_id_[i]));
  }
  return geo_io::write_file(path, out, "geo6");
}

Result<Geo6Database> Geo6Database::load(const std::string& path) {
  auto data = geo_io::read_file(path, "geo6");
  if (!data) return make_error(data.error());
  geo_io::Cursor c{data.value().data(), data.value().data() + data.value().size()};
  if (c.u32() != kMagic || !c.ok) return make_error("geo6: bad magic in '" + path + "'");
  if (c.u32() != kVersion || !c.ok) return make_error("geo6: unsupported version");
  const std::uint32_t count = c.checked_count(kMinRecordBytes);
  if (!c.ok) return make_error("geo6: record count exceeds file size in '" + path + "'");
  std::vector<Geo6Record> records;
  records.reserve(count);
  for (std::uint32_t i = 0; i < count && c.ok; ++i) {
    Geo6Record r;
    Key start{};
    Key end{};
    if (const std::uint8_t* b = c.bytes(16)) std::memcpy(start.data(), b, 16);
    if (const std::uint8_t* b = c.bytes(16)) std::memcpy(end.data(), b, 16);
    r.range_start = Ipv6Address(start);
    r.range_end = Ipv6Address(end);
    r.country = std::string(c.str());
    r.city = std::string(c.str());
    r.latitude = c.f64();
    r.longitude = c.f64();
    r.asn = c.u32();
    r.as_org = std::string(c.str());
    records.push_back(std::move(r));
  }
  if (!c.ok) return make_error("geo6: truncated file");
  return build(std::move(records));
}

Result<Geo6Database> derive_geo6(std::span<const SiteSpec> sites,
                                 std::array<std::uint8_t, 12> prefix) {
  std::vector<Geo6Record> records;
  records.reserve(sites.size());
  auto embed = [&prefix](std::uint32_t v4) {
    std::array<std::uint8_t, 16> b{};
    std::copy(prefix.begin(), prefix.end(), b.begin());
    b[12] = static_cast<std::uint8_t>(v4 >> 24);
    b[13] = static_cast<std::uint8_t>(v4 >> 16);
    b[14] = static_cast<std::uint8_t>(v4 >> 8);
    b[15] = static_cast<std::uint8_t>(v4);
    return Ipv6Address(b);
  };
  for (const auto& s : sites) {
    Geo6Record r;
    r.range_start = embed(s.block_start);
    r.range_end = embed(s.block_start + s.block_size - 1);
    r.country = s.country;
    r.city = s.city;
    r.latitude = s.latitude;
    r.longitude = s.longitude;
    r.asn = s.asn;
    r.as_org = s.organization.empty() ? ("AS" + std::to_string(s.asn) + " Net") : s.organization;
    records.push_back(std::move(r));
  }
  return Geo6Database::build(std::move(records));
}

}  // namespace ruru
