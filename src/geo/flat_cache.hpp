#pragma once
// Fixed-size set-associative cache of POD entries.
//
// Replaces the node-based LruCache on the enrichment fast path: the
// list/unordered_map LRU allocates on every insert and chases three
// pointers per hit; this cache is one flat allocation at construction,
// a hit probes Ways slots in one contiguous set and returns a pointer
// into the cache (no optional<V> copy), and eviction overwrites the
// set's least-recently-stamped way in place.  Single-threaded by design
// (each enrichment worker owns one), like the LRU it replaces.
//
// K and V must be trivially copyable; K additionally needs
// operator== and a `std::uint64_t hash() const` member.  Keys carry
// their full identity (no folding), so a hit is always exact.

#include <cstdint>
#include <type_traits>
#include <vector>

namespace ruru {

template <typename K, typename V, unsigned Ways = 4>
class FlatCache {
  static_assert(std::is_trivially_copyable_v<K>);
  static_assert(std::is_trivially_copyable_v<V>);
  static_assert(Ways >= 1);

 public:
  /// Rounds capacity up to a power-of-two number of sets × Ways.
  explicit FlatCache(std::size_t capacity) {
    std::size_t sets = 1;
    while (sets * Ways < capacity) sets <<= 1;
    sets_.resize(sets);
    mask_ = sets - 1;
  }

  /// Pointer to the cached value (refreshing its recency), or nullptr.
  [[nodiscard]] const V* find(const K& key) {
    Set& s = sets_[set_of(key)];
    for (unsigned w = 0; w < Ways; ++w) {
      if (s.valid[w] && s.key[w] == key) {
        s.stamp[w] = ++s.tick;
        return &s.value[w];
      }
    }
    return nullptr;
  }

  /// Slot for `key` — the existing slot if present, a free way, or the
  /// set's LRU way (evicted in place).  Caller fills the returned value.
  V* insert(const K& key) {
    Set& s = sets_[set_of(key)];
    unsigned victim = 0;
    for (unsigned w = 0; w < Ways; ++w) {
      if (!s.valid[w] || s.key[w] == key) {
        victim = w;
        break;
      }
      if (s.stamp[w] < s.stamp[victim]) victim = w;
    }
    s.key[victim] = key;
    s.valid[victim] = 1;
    s.stamp[victim] = ++s.tick;
    return &s.value[victim];
  }

  void prefetch(const K& key) const { __builtin_prefetch(&sets_[set_of(key)], 0, 1); }

  [[nodiscard]] std::size_t set_of(const K& key) const { return key.hash() & mask_; }
  [[nodiscard]] std::size_t set_count() const { return sets_.size(); }
  [[nodiscard]] static constexpr unsigned ways() { return Ways; }
  [[nodiscard]] std::size_t capacity() const { return sets_.size() * Ways; }

  /// Occupied slots (O(capacity); diagnostics only).
  [[nodiscard]] std::size_t size() const {
    std::size_t n = 0;
    for (const Set& s : sets_) {
      for (unsigned w = 0; w < Ways; ++w) n += s.valid[w];
    }
    return n;
  }

 private:
  struct Set {
    K key[Ways] = {};
    V value[Ways] = {};
    std::uint32_t stamp[Ways] = {};
    std::uint8_t valid[Ways] = {};
    std::uint32_t tick = 0;
  };

  std::vector<Set> sets_;
  std::size_t mask_ = 0;
};

}  // namespace ruru
