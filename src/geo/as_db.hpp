#pragma once
// IP -> autonomous system range database (the AS half of IP2Location).

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "net/ip_address.hpp"
#include "util/result.hpp"

namespace ruru {

struct AsRecord {
  std::uint32_t range_start = 0;  ///< host-order IPv4, inclusive
  std::uint32_t range_end = 0;
  std::uint32_t asn = 0;
  std::string organization;
};

class AsDatabase {
 public:
  AsDatabase() = default;

  static Result<AsDatabase> build(std::vector<AsRecord> records);

  [[nodiscard]] const AsRecord* lookup(Ipv4Address addr) const;

  [[nodiscard]] std::size_t size() const { return records_.size(); }
  [[nodiscard]] const std::vector<AsRecord>& records() const { return records_; }

  Status save(const std::string& path) const;
  static Result<AsDatabase> load(const std::string& path);

 private:
  std::vector<AsRecord> records_;
};

}  // namespace ruru
