#pragma once
// IP -> autonomous system range database (the AS half of IP2Location).
//
// Same structure-of-arrays layout as GeoDatabase: a contiguous sorted
// u32 key array behind a /16 radix skip index, POD payload arrays
// (asn, interned org id), names stored once in geo_names().

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "geo/interner.hpp"
#include "net/ip_address.hpp"
#include "util/result.hpp"

namespace ruru {

/// Interchange record for build()/record()/save().
struct AsRecord {
  std::uint32_t range_start = 0;  ///< host-order IPv4, inclusive
  std::uint32_t range_end = 0;
  std::uint32_t asn = 0;
  std::string organization;
};

class AsDatabase {
 public:
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  AsDatabase() = default;

  static Result<AsDatabase> build(std::vector<AsRecord> records);

  /// Row index of the range containing `addr`, or npos.
  [[nodiscard]] std::size_t find(Ipv4Address addr) const {
    const std::uint32_t v = addr.value();
    const std::uint32_t h = v >> 16;
    std::size_t base = radix_.empty() ? 0 : radix_[h];
    std::size_t n = radix_.empty() ? 0 : radix_[h + 1] - base;
    while (n > 0) {
      const std::size_t half = n / 2;
      const bool right = starts_[base + half] <= v;
      base = right ? base + half + 1 : base;
      n = right ? n - half - 1 : half;
    }
    if (base == 0) return npos;
    const std::size_t i = base - 1;
    return ends_[i] >= v ? i : npos;
  }

  void prefetch(Ipv4Address addr) const {
    if (!radix_.empty()) __builtin_prefetch(&radix_[addr.value() >> 16], 0, 1);
  }

  [[nodiscard]] std::uint32_t range_start(std::size_t i) const { return starts_[i]; }
  [[nodiscard]] std::uint32_t range_end(std::size_t i) const { return ends_[i]; }
  [[nodiscard]] std::uint32_t asn(std::size_t i) const { return asn_[i]; }
  [[nodiscard]] std::uint32_t org_id(std::size_t i) const { return org_id_[i]; }

  /// Materializes strings — format/test/save time only.
  [[nodiscard]] AsRecord record(std::size_t i) const;

  [[nodiscard]] std::optional<AsRecord> lookup_record(Ipv4Address addr) const {
    const std::size_t i = find(addr);
    if (i == npos) return std::nullopt;
    return record(i);
  }

  [[nodiscard]] std::size_t size() const { return starts_.size(); }

  Status save(const std::string& path) const;
  static Result<AsDatabase> load(const std::string& path);

 private:
  void build_radix();

  std::vector<std::uint32_t> starts_;
  std::vector<std::uint32_t> ends_;
  std::vector<std::uint32_t> asn_;
  std::vector<std::uint32_t> org_id_;
  std::vector<std::uint32_t> radix_;
};

}  // namespace ruru
