#include "geo/as_db.hpp"

#include <algorithm>

#include "geo/db_io.hpp"

namespace ruru {

namespace {

constexpr std::uint32_t kMagic = 0x31534147;  // "GAS1"
// start + end + asn + empty length-prefixed org string.
constexpr std::size_t kMinRecordBytes = 4 + 4 + 4 + 4;

}  // namespace

Result<AsDatabase> AsDatabase::build(std::vector<AsRecord> records) {
  std::sort(records.begin(), records.end(),
            [](const AsRecord& a, const AsRecord& b) { return a.range_start < b.range_start; });
  for (std::size_t i = 0; i < records.size(); ++i) {
    if (records[i].range_end < records[i].range_start) {
      return make_error("asdb: record " + std::to_string(i) + " has end < start");
    }
    if (i > 0 && records[i].range_start <= records[i - 1].range_end) {
      return make_error("asdb: overlapping ranges at index " + std::to_string(i));
    }
  }
  AsDatabase db;
  const std::size_t n = records.size();
  db.starts_.reserve(n);
  db.ends_.reserve(n);
  db.asn_.reserve(n);
  db.org_id_.reserve(n);
  StringInterner& names = geo_names();
  for (const AsRecord& r : records) {
    db.starts_.push_back(r.range_start);
    db.ends_.push_back(r.range_end);
    db.asn_.push_back(r.asn);
    db.org_id_.push_back(names.intern(r.organization));
  }
  db.build_radix();
  return db;
}

void AsDatabase::build_radix() {
  radix_.assign(65537, 0);
  std::size_t row = 0;
  for (std::size_t h = 0; h <= 65536; ++h) {
    while (row < starts_.size() && (starts_[row] >> 16) < h) ++row;
    radix_[h] = static_cast<std::uint32_t>(row);
  }
}

AsRecord AsDatabase::record(std::size_t i) const {
  AsRecord r;
  r.range_start = starts_[i];
  r.range_end = ends_[i];
  r.asn = asn_[i];
  r.organization = std::string(geo_names().view(org_id_[i]));
  return r;
}

Status AsDatabase::save(const std::string& path) const {
  std::vector<std::uint8_t> out;
  out.reserve(64 + size() * 32);
  geo_io::put_u32(out, kMagic);
  geo_io::put_u32(out, static_cast<std::uint32_t>(size()));
  for (std::size_t i = 0; i < size(); ++i) {
    geo_io::put_u32(out, starts_[i]);
    geo_io::put_u32(out, ends_[i]);
    geo_io::put_u32(out, asn_[i]);
    geo_io::put_str(out, geo_names().view(org_id_[i]));
  }
  return geo_io::write_file(path, out, "asdb");
}

Result<AsDatabase> AsDatabase::load(const std::string& path) {
  auto data = geo_io::read_file(path, "asdb");
  if (!data) return make_error(data.error());
  geo_io::Cursor c{data.value().data(), data.value().data() + data.value().size()};
  if (c.u32() != kMagic || !c.ok) return make_error("asdb: bad magic");
  const std::uint32_t count = c.checked_count(kMinRecordBytes);
  if (!c.ok) return make_error("asdb: record count exceeds file size in '" + path + "'");
  std::vector<AsRecord> records;
  records.reserve(count);
  for (std::uint32_t i = 0; i < count && c.ok; ++i) {
    AsRecord r;
    r.range_start = c.u32();
    r.range_end = c.u32();
    r.asn = c.u32();
    r.organization = std::string(c.str());
    records.push_back(std::move(r));
  }
  if (!c.ok) return make_error("asdb: truncated file");
  return build(std::move(records));
}

}  // namespace ruru
