#include "geo/as_db.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>

#include "util/byte_order.hpp"

namespace ruru {

namespace {

constexpr std::uint32_t kMagic = 0x31534147;  // "GAS1"

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  std::uint8_t b[4];
  store_le32(b, v);
  out.insert(out.end(), b, b + 4);
}

void put_str(std::vector<std::uint8_t>& out, const std::string& s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out.insert(out.end(), s.begin(), s.end());
}

}  // namespace

Result<AsDatabase> AsDatabase::build(std::vector<AsRecord> records) {
  std::sort(records.begin(), records.end(),
            [](const AsRecord& a, const AsRecord& b) { return a.range_start < b.range_start; });
  for (std::size_t i = 0; i < records.size(); ++i) {
    if (records[i].range_end < records[i].range_start) {
      return make_error("asdb: record " + std::to_string(i) + " has end < start");
    }
    if (i > 0 && records[i].range_start <= records[i - 1].range_end) {
      return make_error("asdb: overlapping ranges at index " + std::to_string(i));
    }
  }
  AsDatabase db;
  db.records_ = std::move(records);
  return db;
}

const AsRecord* AsDatabase::lookup(Ipv4Address addr) const {
  const std::uint32_t v = addr.value();
  auto it = std::upper_bound(
      records_.begin(), records_.end(), v,
      [](std::uint32_t value, const AsRecord& r) { return value < r.range_start; });
  if (it == records_.begin()) return nullptr;
  --it;
  return (v >= it->range_start && v <= it->range_end) ? &*it : nullptr;
}

Status AsDatabase::save(const std::string& path) const {
  std::vector<std::uint8_t> out;
  out.reserve(64 + records_.size() * 32);
  put_u32(out, kMagic);
  put_u32(out, static_cast<std::uint32_t>(records_.size()));
  for (const auto& r : records_) {
    put_u32(out, r.range_start);
    put_u32(out, r.range_end);
    put_u32(out, r.asn);
    put_str(out, r.organization);
  }
  std::unique_ptr<std::FILE, int (*)(std::FILE*)> f(std::fopen(path.c_str(), "wb"),
                                                    &std::fclose);
  if (!f) return make_error("asdb: cannot open '" + path + "' for writing");
  if (std::fwrite(out.data(), 1, out.size(), f.get()) != out.size()) {
    return make_error("asdb: short write");
  }
  return {};
}

Result<AsDatabase> AsDatabase::load(const std::string& path) {
  std::unique_ptr<std::FILE, int (*)(std::FILE*)> f(std::fopen(path.c_str(), "rb"),
                                                    &std::fclose);
  if (!f) return make_error("asdb: cannot open '" + path + "'");
  std::fseek(f.get(), 0, SEEK_END);
  const long size = std::ftell(f.get());
  std::fseek(f.get(), 0, SEEK_SET);
  std::vector<std::uint8_t> data(static_cast<std::size_t>(size > 0 ? size : 0));
  if (!data.empty() && std::fread(data.data(), 1, data.size(), f.get()) != data.size()) {
    return make_error("asdb: short read");
  }

  const std::uint8_t* p = data.data();
  const std::uint8_t* end = p + data.size();
  auto need = [&](std::size_t n) { return static_cast<std::size_t>(end - p) >= n; };
  if (!need(8)) return make_error("asdb: truncated header");
  if (load_le32(p) != kMagic) return make_error("asdb: bad magic");
  p += 4;
  const std::uint32_t count = load_le32(p);
  p += 4;

  std::vector<AsRecord> records;
  records.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    if (!need(16)) return make_error("asdb: truncated record");
    AsRecord r;
    r.range_start = load_le32(p);
    r.range_end = load_le32(p + 4);
    r.asn = load_le32(p + 8);
    const std::uint32_t slen = load_le32(p + 12);
    p += 16;
    if (!need(slen)) return make_error("asdb: truncated string");
    r.organization.assign(reinterpret_cast<const char*>(p), slen);
    p += slen;
    records.push_back(std::move(r));
  }
  return build(std::move(records));
}

}  // namespace ruru
