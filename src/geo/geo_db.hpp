#pragma once
// IP -> location range database (the IP2Location role).
//
// Records are non-overlapping, inclusive IPv4 ranges sorted by start.
// Storage is structure-of-arrays: the lookup walks a contiguous u32 key
// array (4-byte stride, ~16 keys per cache line) with a branchless
// binary search confined to a /16 bucket by a precomputed radix skip
// index; the payload — interned name ids and coordinates, all POD —
// lives in parallel arrays touched once per hit.  Strings are stored
// exactly once, in the shared geo_names() interner.
//
// The database round-trips through a compact binary file format so
// deployments can ship it separately from the binary, like the
// commercial DB the paper used; the format is unchanged from the
// string-based storage (v1).

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "geo/interner.hpp"
#include "net/ip_address.hpp"
#include "util/result.hpp"

namespace ruru {

/// Interchange record for build()/record()/save(); not the hot-path
/// representation.
struct GeoRecord {
  std::uint32_t range_start = 0;  ///< host-order IPv4, inclusive
  std::uint32_t range_end = 0;    ///< host-order IPv4, inclusive
  std::string country;            ///< ISO 3166-1 alpha-2
  std::string city;
  double latitude = 0.0;
  double longitude = 0.0;
};

class GeoDatabase {
 public:
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  GeoDatabase() = default;

  /// Sorts records, validates that ranges do not overlap, interns names.
  static Result<GeoDatabase> build(std::vector<GeoRecord> records);

  /// Row index of the range containing `addr`, or npos.  Radix skip +
  /// branchless search; no allocation, no string touch.
  [[nodiscard]] std::size_t find(Ipv4Address addr) const {
    const std::uint32_t v = addr.value();
    const std::uint32_t h = v >> 16;
    std::size_t base = radix_.empty() ? 0 : radix_[h];
    std::size_t n = radix_.empty() ? 0 : radix_[h + 1] - base;
    while (n > 0) {  // branchless upper_bound: ternaries compile to cmov
      const std::size_t half = n / 2;
      const bool right = starts_[base + half] <= v;
      base = right ? base + half + 1 : base;
      n = right ? n - half - 1 : half;
    }
    if (base == 0) return npos;
    const std::size_t i = base - 1;  // starts_[i] <= v by construction
    return ends_[i] >= v ? i : npos;
  }

  /// Prefetch the radix bucket for `addr` (batch lookahead).
  void prefetch(Ipv4Address addr) const {
    if (!radix_.empty()) __builtin_prefetch(&radix_[addr.value() >> 16], 0, 1);
  }

  // POD row accessors (no allocation; format names via geo_names()).
  [[nodiscard]] std::uint32_t range_start(std::size_t i) const { return starts_[i]; }
  [[nodiscard]] std::uint32_t range_end(std::size_t i) const { return ends_[i]; }
  [[nodiscard]] std::uint32_t country_id(std::size_t i) const { return country_id_[i]; }
  [[nodiscard]] std::uint32_t city_id(std::size_t i) const { return city_id_[i]; }
  [[nodiscard]] double latitude(std::size_t i) const { return lat_[i]; }
  [[nodiscard]] double longitude(std::size_t i) const { return lon_[i]; }

  /// Materializes a record's strings through the interner — format /
  /// test / save time only, never on the enrichment path.
  [[nodiscard]] GeoRecord record(std::size_t i) const;

  /// Convenience for tools and tests: find + record.
  [[nodiscard]] std::optional<GeoRecord> lookup_record(Ipv4Address addr) const {
    const std::size_t i = find(addr);
    if (i == npos) return std::nullopt;
    return record(i);
  }

  [[nodiscard]] std::size_t size() const { return starts_.size(); }

  Status save(const std::string& path) const;
  static Result<GeoDatabase> load(const std::string& path);

 private:
  void build_radix();

  std::vector<std::uint32_t> starts_;  // sorted; the only array the search walks
  std::vector<std::uint32_t> ends_;
  std::vector<std::uint32_t> country_id_;
  std::vector<std::uint32_t> city_id_;
  std::vector<double> lat_;
  std::vector<double> lon_;
  std::vector<std::uint32_t> radix_;   // 65537: first row with start >= (h<<16)
};

}  // namespace ruru
