#pragma once
// IP -> location range database (the IP2Location role).
//
// Records are non-overlapping, inclusive IPv4 ranges sorted by start;
// lookup is a binary search.  The database round-trips through a compact
// binary file format so deployments can ship it separately from the
// binary, like the commercial DB the paper used.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "net/ip_address.hpp"
#include "util/result.hpp"

namespace ruru {

struct GeoRecord {
  std::uint32_t range_start = 0;  ///< host-order IPv4, inclusive
  std::uint32_t range_end = 0;    ///< host-order IPv4, inclusive
  std::string country;            ///< ISO 3166-1 alpha-2
  std::string city;
  double latitude = 0.0;
  double longitude = 0.0;
};

class GeoDatabase {
 public:
  GeoDatabase() = default;

  /// Sorts records and validates that ranges do not overlap.
  static Result<GeoDatabase> build(std::vector<GeoRecord> records);

  /// Binary search for the range containing `addr`.
  [[nodiscard]] const GeoRecord* lookup(Ipv4Address addr) const;

  [[nodiscard]] std::size_t size() const { return records_.size(); }
  [[nodiscard]] const std::vector<GeoRecord>& records() const { return records_; }

  Status save(const std::string& path) const;
  static Result<GeoDatabase> load(const std::string& path);

 private:
  std::vector<GeoRecord> records_;  // sorted by range_start
};

}  // namespace ruru
