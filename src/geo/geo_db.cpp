#include "geo/geo_db.hpp"

#include <algorithm>

#include "geo/db_io.hpp"

namespace ruru {

namespace {

constexpr std::uint32_t kMagic = 0x4F454747;  // "GGEO"
constexpr std::uint32_t kVersion = 1;
// start + end + two empty length-prefixed strings + lat + lon.
constexpr std::size_t kMinRecordBytes = 4 + 4 + 4 + 4 + 8 + 8;

}  // namespace

Result<GeoDatabase> GeoDatabase::build(std::vector<GeoRecord> records) {
  std::sort(records.begin(), records.end(),
            [](const GeoRecord& a, const GeoRecord& b) { return a.range_start < b.range_start; });
  for (std::size_t i = 0; i < records.size(); ++i) {
    if (records[i].range_end < records[i].range_start) {
      return make_error("geo: record " + std::to_string(i) + " has end < start");
    }
    if (i > 0 && records[i].range_start <= records[i - 1].range_end) {
      return make_error("geo: overlapping ranges at index " + std::to_string(i));
    }
  }
  GeoDatabase db;
  const std::size_t n = records.size();
  db.starts_.reserve(n);
  db.ends_.reserve(n);
  db.country_id_.reserve(n);
  db.city_id_.reserve(n);
  db.lat_.reserve(n);
  db.lon_.reserve(n);
  StringInterner& names = geo_names();
  for (const GeoRecord& r : records) {
    db.starts_.push_back(r.range_start);
    db.ends_.push_back(r.range_end);
    db.country_id_.push_back(names.intern(r.country));
    db.city_id_.push_back(names.intern(r.city));
    db.lat_.push_back(r.latitude);
    db.lon_.push_back(r.longitude);
  }
  db.build_radix();
  return db;
}

void GeoDatabase::build_radix() {
  radix_.assign(65537, 0);
  std::size_t row = 0;
  for (std::size_t h = 0; h <= 65536; ++h) {
    while (row < starts_.size() && (starts_[row] >> 16) < h) ++row;
    radix_[h] = static_cast<std::uint32_t>(row);
  }
}

GeoRecord GeoDatabase::record(std::size_t i) const {
  GeoRecord r;
  r.range_start = starts_[i];
  r.range_end = ends_[i];
  r.country = std::string(geo_names().view(country_id_[i]));
  r.city = std::string(geo_names().view(city_id_[i]));
  r.latitude = lat_[i];
  r.longitude = lon_[i];
  return r;
}

Status GeoDatabase::save(const std::string& path) const {
  std::vector<std::uint8_t> out;
  out.reserve(64 + size() * 48);
  geo_io::put_u32(out, kMagic);
  geo_io::put_u32(out, kVersion);
  geo_io::put_u32(out, static_cast<std::uint32_t>(size()));
  for (std::size_t i = 0; i < size(); ++i) {
    geo_io::put_u32(out, starts_[i]);
    geo_io::put_u32(out, ends_[i]);
    geo_io::put_str(out, geo_names().view(country_id_[i]));
    geo_io::put_str(out, geo_names().view(city_id_[i]));
    geo_io::put_f64(out, lat_[i]);
    geo_io::put_f64(out, lon_[i]);
  }
  return geo_io::write_file(path, out, "geo");
}

Result<GeoDatabase> GeoDatabase::load(const std::string& path) {
  auto data = geo_io::read_file(path, "geo");
  if (!data) return make_error(data.error());
  geo_io::Cursor c{data.value().data(), data.value().data() + data.value().size()};
  if (c.u32() != kMagic || !c.ok) return make_error("geo: bad magic in '" + path + "'");
  if (c.u32() != kVersion || !c.ok) return make_error("geo: unsupported version");
  const std::uint32_t count = c.checked_count(kMinRecordBytes);
  if (!c.ok) return make_error("geo: record count exceeds file size in '" + path + "'");
  std::vector<GeoRecord> records;
  records.reserve(count);
  for (std::uint32_t i = 0; i < count && c.ok; ++i) {
    GeoRecord r;
    r.range_start = c.u32();
    r.range_end = c.u32();
    r.country = std::string(c.str());
    r.city = std::string(c.str());
    r.latitude = c.f64();
    r.longitude = c.f64();
    records.push_back(std::move(r));
  }
  if (!c.ok) return make_error("geo: truncated file");
  return build(std::move(records));
}

}  // namespace ruru
