#include "geo/geo_db.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>

#include "util/byte_order.hpp"

namespace ruru {

namespace {

constexpr std::uint32_t kMagic = 0x4F454747;  // "GGEO"
constexpr std::uint32_t kVersion = 1;

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  std::uint8_t b[4];
  store_le32(b, v);
  out.insert(out.end(), b, b + 4);
}

void put_f64(std::vector<std::uint8_t>& out, double v) {
  std::uint8_t b[8];
  std::memcpy(b, &v, 8);  // IEEE 754 little-endian hosts only (all our targets)
  out.insert(out.end(), b, b + 8);
}

void put_str(std::vector<std::uint8_t>& out, const std::string& s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out.insert(out.end(), s.begin(), s.end());
}

struct Cursor {
  const std::uint8_t* p;
  const std::uint8_t* end;
  bool ok = true;

  std::uint32_t u32() {
    if (end - p < 4) {
      ok = false;
      return 0;
    }
    const std::uint32_t v = load_le32(p);
    p += 4;
    return v;
  }
  double f64() {
    if (end - p < 8) {
      ok = false;
      return 0;
    }
    double v;
    std::memcpy(&v, p, 8);
    p += 8;
    return v;
  }
  std::string str() {
    const std::uint32_t n = u32();
    if (!ok || static_cast<std::size_t>(end - p) < n) {
      ok = false;
      return {};
    }
    std::string s(reinterpret_cast<const char*>(p), n);
    p += n;
    return s;
  }
};

Result<std::vector<std::uint8_t>> read_file(const std::string& path) {
  std::unique_ptr<std::FILE, int (*)(std::FILE*)> f(std::fopen(path.c_str(), "rb"),
                                                    &std::fclose);
  if (!f) return make_error("geo: cannot open '" + path + "'");
  std::fseek(f.get(), 0, SEEK_END);
  const long size = std::ftell(f.get());
  std::fseek(f.get(), 0, SEEK_SET);
  if (size < 0) return make_error("geo: ftell failed");
  std::vector<std::uint8_t> data(static_cast<std::size_t>(size));
  if (!data.empty() && std::fread(data.data(), 1, data.size(), f.get()) != data.size()) {
    return make_error("geo: short read");
  }
  return data;
}

Status write_file(const std::string& path, const std::vector<std::uint8_t>& data) {
  std::unique_ptr<std::FILE, int (*)(std::FILE*)> f(std::fopen(path.c_str(), "wb"),
                                                    &std::fclose);
  if (!f) return make_error("geo: cannot open '" + path + "' for writing");
  if (std::fwrite(data.data(), 1, data.size(), f.get()) != data.size()) {
    return make_error("geo: short write");
  }
  return {};
}

}  // namespace

Result<GeoDatabase> GeoDatabase::build(std::vector<GeoRecord> records) {
  std::sort(records.begin(), records.end(),
            [](const GeoRecord& a, const GeoRecord& b) { return a.range_start < b.range_start; });
  for (std::size_t i = 0; i < records.size(); ++i) {
    if (records[i].range_end < records[i].range_start) {
      return make_error("geo: record " + std::to_string(i) + " has end < start");
    }
    if (i > 0 && records[i].range_start <= records[i - 1].range_end) {
      return make_error("geo: overlapping ranges at index " + std::to_string(i));
    }
  }
  GeoDatabase db;
  db.records_ = std::move(records);
  return db;
}

const GeoRecord* GeoDatabase::lookup(Ipv4Address addr) const {
  const std::uint32_t v = addr.value();
  // First record with range_start > v, then step back.
  auto it = std::upper_bound(records_.begin(), records_.end(), v,
                             [](std::uint32_t value, const GeoRecord& r) {
                               return value < r.range_start;
                             });
  if (it == records_.begin()) return nullptr;
  --it;
  return (v >= it->range_start && v <= it->range_end) ? &*it : nullptr;
}

Status GeoDatabase::save(const std::string& path) const {
  std::vector<std::uint8_t> out;
  out.reserve(64 + records_.size() * 48);
  put_u32(out, kMagic);
  put_u32(out, kVersion);
  put_u32(out, static_cast<std::uint32_t>(records_.size()));
  for (const auto& r : records_) {
    put_u32(out, r.range_start);
    put_u32(out, r.range_end);
    put_str(out, r.country);
    put_str(out, r.city);
    put_f64(out, r.latitude);
    put_f64(out, r.longitude);
  }
  return write_file(path, out);
}

Result<GeoDatabase> GeoDatabase::load(const std::string& path) {
  auto data = read_file(path);
  if (!data) return make_error(data.error());
  Cursor c{data.value().data(), data.value().data() + data.value().size()};
  if (c.u32() != kMagic) return make_error("geo: bad magic in '" + path + "'");
  if (c.u32() != kVersion) return make_error("geo: unsupported version");
  const std::uint32_t count = c.u32();
  std::vector<GeoRecord> records;
  records.reserve(count);
  for (std::uint32_t i = 0; i < count && c.ok; ++i) {
    GeoRecord r;
    r.range_start = c.u32();
    r.range_end = c.u32();
    r.country = c.str();
    r.city = c.str();
    r.latitude = c.f64();
    r.longitude = c.f64();
    records.push_back(std::move(r));
  }
  if (!c.ok) return make_error("geo: truncated file");
  return build(std::move(records));
}

}  // namespace ruru
