#pragma once
// String interner for geo/AS names.
//
// The range databases carry a handful of distinct strings (city names,
// country codes, AS organizations) replicated across millions of
// samples.  Interning happens once at DB build/load time: each distinct
// string gets a stable u32 id and one arena-backed copy.  The hot
// enrichment path then moves only ids (GeoInfo is a POD); sinks resolve
// ids back to names at format time via view().
//
// Concurrency contract: intern() is mutex-guarded (build time, cold).
// view() is lock-free and safe against concurrent intern() — entries
// live in fixed-size chunks that never move, and the published count is
// released after the chunk slot is written.

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace ruru {

class StringInterner {
 public:
  /// Id 0 is always the empty string.
  StringInterner();

  StringInterner(const StringInterner&) = delete;
  StringInterner& operator=(const StringInterner&) = delete;

  /// Returns the id for `s`, allocating one if unseen.  Ids are dense,
  /// stable for the interner's lifetime, and equal iff the strings are.
  std::uint32_t intern(std::string_view s);

  /// Sentinel returned by find() for strings never interned.
  static constexpr std::uint32_t kNotFound = 0xFFFF'FFFFu;

  /// Id lookup that never allocates an id: kNotFound for unseen strings.
  /// Lets query paths probe filter strings without growing the table.
  [[nodiscard]] std::uint32_t find(std::string_view s) const;

  /// Resolves an id; out-of-range ids resolve to "".  Lock-free.
  [[nodiscard]] std::string_view view(std::uint32_t id) const {
    if (id >= count_.load(std::memory_order_acquire)) return {};
    const Entry& e = chunks_[id >> kChunkShift][id & (kChunkSize - 1)];
    return {e.data, e.len};
  }

  /// Number of distinct strings interned (including the empty string).
  [[nodiscard]] std::size_t size() const {
    return count_.load(std::memory_order_acquire);
  }

 private:
  static constexpr std::size_t kChunkShift = 10;
  static constexpr std::size_t kChunkSize = std::size_t{1} << kChunkShift;  // entries
  static constexpr std::size_t kMaxChunks = std::size_t{1} << 12;           // 4M ids
  static constexpr std::size_t kArenaBlock = std::size_t{64} * 1024;        // bytes

  struct Entry {
    const char* data = nullptr;
    std::uint32_t len = 0;
  };

  const char* copy_to_arena(std::string_view s);

  mutable std::mutex mu_;
  std::unordered_map<std::string, std::uint32_t> index_;   // build-time lookup
  std::vector<std::unique_ptr<char[]>> arena_;             // string bytes, stable
  std::size_t arena_used_ = 0;       // bytes written into the back block
  std::size_t arena_remaining_ = 0;  // bytes left there (0 = force new block)
  std::vector<std::unique_ptr<Entry[]>> chunk_storage_;    // owns chunk arrays
  std::array<Entry*, kMaxChunks> chunks_{};                // id -> entry directory
  std::atomic<std::uint32_t> count_{0};
};

/// Process-wide name table shared by the geo/AS/geo6 databases and every
/// sink that formats enriched samples.  One table keeps ids comparable
/// across databases (a filter interning "NZ" gets the same id the geo DB
/// did).
StringInterner& geo_names();

}  // namespace ruru
