#include "geo/world.hpp"

#include <algorithm>

#include "util/random.hpp"

namespace ruru {

Result<World> build_world(std::span<const SiteSpec> sites) {
  std::vector<GeoRecord> geo;
  geo.reserve(sites.size());
  std::vector<AsRecord> as;
  as.reserve(sites.size());
  for (const auto& s : sites) {
    GeoRecord g;
    g.range_start = s.block_start;
    g.range_end = s.block_start + s.block_size - 1;
    g.country = s.country;
    g.city = s.city;
    g.latitude = s.latitude;
    g.longitude = s.longitude;
    geo.push_back(std::move(g));

    AsRecord a;
    a.range_start = s.block_start;
    a.range_end = s.block_start + s.block_size - 1;
    a.asn = s.asn;
    a.organization = s.organization.empty() ? ("AS" + std::to_string(s.asn) + " Net") : s.organization;
    as.push_back(std::move(a));
  }

  auto geo_db = GeoDatabase::build(std::move(geo));
  if (!geo_db) return make_error(geo_db.error());

  // Merge adjacent same-ASN blocks (IP2Location-style coalescing).
  std::sort(as.begin(), as.end(),
            [](const AsRecord& x, const AsRecord& y) { return x.range_start < y.range_start; });
  std::vector<AsRecord> merged;
  for (auto& r : as) {
    if (!merged.empty() && merged.back().asn == r.asn &&
        merged.back().range_end + 1 == r.range_start) {
      merged.back().range_end = r.range_end;
    } else {
      merged.push_back(std::move(r));
    }
  }
  auto as_db = AsDatabase::build(std::move(merged));
  if (!as_db) return make_error(as_db.error());

  return World{std::move(geo_db).value(), std::move(as_db).value()};
}

std::vector<SiteSpec> large_world_sites(std::size_t cities) {
  // Deterministic pseudo-world: city names are synthesized, coordinates
  // drawn over landmass-ish latitude bands, blocks carved from 100.0.0.0/8.
  static const char* const kCountries[] = {
      "US", "CA", "MX", "BR", "AR", "CL", "GB", "FR", "DE", "NL", "SE", "NO", "ES", "IT",
      "PL", "CZ", "AT", "CH", "PT", "IE", "RU", "UA", "TR", "GR", "JP", "KR", "CN", "TW",
      "HK", "SG", "MY", "TH", "VN", "PH", "ID", "IN", "PK", "BD", "AU", "NZ", "FJ", "ZA",
      "NG", "KE", "EG", "MA", "IL", "SA", "AE", "QA", "FI", "DK", "BE", "HU", "RO", "BG",
      "RS", "HR", "CO", "PE"};
  std::vector<SiteSpec> sites;
  sites.reserve(cities);
  Pcg32 rng(0xC17135);
  for (std::size_t i = 0; i < cities; ++i) {
    SiteSpec s;
    const char* country = kCountries[i % std::size(kCountries)];
    s.country = country;
    s.city = std::string(country) + "-City-" + std::to_string(i);
    s.latitude = rng.uniform(-55.0, 70.0);
    s.longitude = rng.uniform(-180.0, 180.0);
    s.asn = 64512 + static_cast<std::uint32_t>(i);  // private ASN space
    s.organization = "SynthNet " + std::to_string(s.asn);
    s.block_start = (100u << 24) + static_cast<std::uint32_t>(i) * 4096;
    s.block_size = 4096;
    sites.push_back(std::move(s));
  }
  return sites;
}

}  // namespace ruru
