#pragma once
// Synthetic world builder: turns a site plan (city, coordinates, ASN,
// address block) into consistent Geo + AS databases.  Substitutes the
// IP2Location data the paper used; accuracy is 100% by construction,
// which DESIGN.md documents as a conservative stand-in for the paper's
// "98% country-level accuracy".

#include <span>

#include "geo/as_db.hpp"
#include "geo/geo_db.hpp"

namespace ruru {

struct SiteSpec {
  std::string city;
  std::string country;
  double latitude = 0.0;
  double longitude = 0.0;
  std::uint32_t asn = 0;
  std::string organization;
  std::uint32_t block_start = 0;  ///< host-order first address
  std::uint32_t block_size = 256;
};

struct World {
  GeoDatabase geo;
  AsDatabase as;
};

/// Builds both databases from the site plan. Adjacent blocks under the
/// same ASN are merged into one AS range.
[[nodiscard]] Result<World> build_world(std::span<const SiteSpec> sites);

/// A 220-city / ~60-country world with plausible coordinates, for
/// benches that need lookup tables much larger than the scenario sites.
[[nodiscard]] std::vector<SiteSpec> large_world_sites(std::size_t cities = 220);

}  // namespace ruru
