#pragma once
// Internal binary-format helpers shared by the geo / AS / geo6 database
// loaders.  Not installed API — include only from src/geo/*.cpp.
//
// Readers are defensive by construction: every fetch is bounds-checked
// against the mapped buffer, and record counts read from a file header
// must fit in the remaining bytes at the format's minimum record size
// (a corrupt header cannot demand a multi-GB reserve()).

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/byte_order.hpp"
#include "util/result.hpp"

namespace ruru::geo_io {

inline void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  std::uint8_t b[4];
  store_le32(b, v);
  out.insert(out.end(), b, b + 4);
}

inline void put_f64(std::vector<std::uint8_t>& out, double v) {
  std::uint8_t b[8];
  std::memcpy(b, &v, 8);  // IEEE 754 little-endian hosts only (all our targets)
  out.insert(out.end(), b, b + 8);
}

inline void put_str(std::vector<std::uint8_t>& out, std::string_view s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out.insert(out.end(), s.begin(), s.end());
}

inline void put_bytes(std::vector<std::uint8_t>& out, const std::uint8_t* p, std::size_t n) {
  out.insert(out.end(), p, p + n);
}

/// Bounds-checked little-endian reader over a loaded file image.
struct Cursor {
  const std::uint8_t* p;
  const std::uint8_t* end;
  bool ok = true;

  [[nodiscard]] std::size_t remaining() const {
    return static_cast<std::size_t>(end - p);
  }

  std::uint32_t u32() {
    if (remaining() < 4) {
      ok = false;
      return 0;
    }
    const std::uint32_t v = load_le32(p);
    p += 4;
    return v;
  }

  double f64() {
    if (remaining() < 8) {
      ok = false;
      return 0;
    }
    double v;
    std::memcpy(&v, p, 8);
    p += 8;
    return v;
  }

  /// Length-prefixed string; the view aliases the file buffer.
  std::string_view str() {
    const std::uint32_t n = u32();
    if (!ok || remaining() < n) {
      ok = false;
      return {};
    }
    std::string_view s(reinterpret_cast<const char*>(p), n);
    p += n;
    return s;
  }

  const std::uint8_t* bytes(std::size_t n) {
    if (remaining() < n) {
      ok = false;
      return nullptr;
    }
    const std::uint8_t* b = p;
    p += n;
    return b;
  }

  /// Record count whose records occupy at least `min_record_size` bytes
  /// each: rejects counts a truncated or hostile header cannot back.
  std::uint32_t checked_count(std::size_t min_record_size) {
    const std::uint32_t n = u32();
    if (!ok) return 0;
    if (min_record_size != 0 && n > remaining() / min_record_size) {
      ok = false;
      return 0;
    }
    return n;
  }
};

inline Result<std::vector<std::uint8_t>> read_file(const std::string& path,
                                                   const char* tag) {
  std::unique_ptr<std::FILE, int (*)(std::FILE*)> f(std::fopen(path.c_str(), "rb"),
                                                    &std::fclose);
  if (!f) return make_error(std::string(tag) + ": cannot open '" + path + "'");
  std::fseek(f.get(), 0, SEEK_END);
  const long size = std::ftell(f.get());
  std::fseek(f.get(), 0, SEEK_SET);
  if (size < 0) return make_error(std::string(tag) + ": ftell failed");
  std::vector<std::uint8_t> data(static_cast<std::size_t>(size));
  if (!data.empty() && std::fread(data.data(), 1, data.size(), f.get()) != data.size()) {
    return make_error(std::string(tag) + ": short read");
  }
  return data;
}

inline Status write_file(const std::string& path, const std::vector<std::uint8_t>& data,
                         const char* tag) {
  std::unique_ptr<std::FILE, int (*)(std::FILE*)> f(std::fopen(path.c_str(), "wb"),
                                                    &std::fclose);
  if (!f) return make_error(std::string(tag) + ": cannot open '" + path + "' for writing");
  if (!data.empty() && std::fwrite(data.data(), 1, data.size(), f.get()) != data.size()) {
    return make_error(std::string(tag) + ": short write");
  }
  return {};
}

}  // namespace ruru::geo_io
