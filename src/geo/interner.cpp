#include "geo/interner.hpp"

#include <cstring>

namespace ruru {

StringInterner::StringInterner() { (void)intern(std::string_view{}); }

const char* StringInterner::copy_to_arena(std::string_view s) {
  if (s.empty()) return "";
  if (s.size() > arena_remaining_) {
    // Oversized strings get a block of exactly their size; it is left
    // with zero remaining, so the next string opens a fresh block
    // rather than writing past the end of this one.
    const std::size_t block = s.size() > kArenaBlock ? s.size() : kArenaBlock;
    arena_.push_back(std::make_unique<char[]>(block));
    arena_used_ = 0;
    arena_remaining_ = block;
  }
  char* dst = arena_.back().get() + arena_used_;
  std::memcpy(dst, s.data(), s.size());
  arena_used_ += s.size();
  arena_remaining_ -= s.size();
  return dst;
}

std::uint32_t StringInterner::intern(std::string_view s) {
  std::lock_guard lock(mu_);
  if (auto it = index_.find(std::string(s)); it != index_.end()) return it->second;

  const std::uint32_t id = count_.load(std::memory_order_relaxed);
  const std::size_t chunk = id >> kChunkShift;
  if (chunk >= kMaxChunks) return 0;  // table full: degrade to ""
  if (chunks_[chunk] == nullptr) {
    chunk_storage_.push_back(std::make_unique<Entry[]>(kChunkSize));
    chunks_[chunk] = chunk_storage_.back().get();
  }
  Entry& e = chunks_[chunk][id & (kChunkSize - 1)];
  e.data = copy_to_arena(s);
  e.len = static_cast<std::uint32_t>(s.size());
  index_.emplace(std::string(s), id);
  count_.store(id + 1, std::memory_order_release);
  return id;
}

std::uint32_t StringInterner::find(std::string_view s) const {
  std::lock_guard lock(mu_);
  const auto it = index_.find(std::string(s));
  return it == index_.end() ? kNotFound : it->second;
}

StringInterner& geo_names() {
  static StringInterner table;
  return table;
}

}  // namespace ruru
