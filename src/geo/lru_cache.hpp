#pragma once
// Small LRU cache for geo/AS lookups.
//
// Production traffic is heavy-tailed over sources, so the enrichment
// stage front-loads the range DBs with an LRU keyed by address.  Header-
// only template; single-threaded by design (each enrichment worker owns
// one).

#include <cstdint>
#include <list>
#include <optional>
#include <unordered_map>
#include <utility>

namespace ruru {

template <typename K, typename V>
class LruCache {
 public:
  explicit LruCache(std::size_t capacity) : capacity_(capacity) {}

  std::optional<V> get(const K& key) {
    auto it = index_.find(key);
    if (it == index_.end()) {
      ++misses_;
      return std::nullopt;
    }
    order_.splice(order_.begin(), order_, it->second);
    ++hits_;
    return it->second->second;
  }

  void put(const K& key, V value) {
    auto it = index_.find(key);
    if (it != index_.end()) {
      it->second->second = std::move(value);
      order_.splice(order_.begin(), order_, it->second);
      return;
    }
    order_.emplace_front(key, std::move(value));
    index_[key] = order_.begin();
    if (index_.size() > capacity_) {
      index_.erase(order_.back().first);
      order_.pop_back();
    }
  }

  [[nodiscard]] std::size_t size() const { return index_.size(); }
  [[nodiscard]] std::uint64_t hits() const { return hits_; }
  [[nodiscard]] std::uint64_t misses() const { return misses_; }

 private:
  std::size_t capacity_;
  std::list<std::pair<K, V>> order_;
  std::unordered_map<K, typename std::list<std::pair<K, V>>::iterator> index_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace ruru
