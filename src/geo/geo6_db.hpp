#pragma once
// IPv6 -> location range database (IP2Location ships a v6 table too).
//
// Same shape as the IPv4 GeoDatabase: sorted, non-overlapping inclusive
// ranges over the 128-bit address space.  Storage is structure-of-arrays
// like the v4 DBs — a contiguous sorted 16-byte key array with parallel
// POD payload arrays (interned name ids, coordinates, ASN).  The v6
// table is orders of magnitude smaller than the v4 one, so the binary
// search runs without a radix skip index; addresses compare
// lexicographically over their 16 network-order bytes.

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "geo/interner.hpp"
#include "net/ip_address.hpp"
#include "util/result.hpp"

namespace ruru {

/// Interchange record for build()/record()/save().
struct Geo6Record {
  Ipv6Address range_start;  ///< inclusive
  Ipv6Address range_end;    ///< inclusive
  std::string country;
  std::string city;
  double latitude = 0.0;
  double longitude = 0.0;
  std::uint32_t asn = 0;  ///< v6 table carries ASN inline
  std::string as_org;
};

class Geo6Database {
 public:
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  Geo6Database() = default;

  static Result<Geo6Database> build(std::vector<Geo6Record> records);

  /// Row index of the range containing `addr`, or npos.
  [[nodiscard]] std::size_t find(const Ipv6Address& addr) const;

  [[nodiscard]] std::uint32_t country_id(std::size_t i) const { return country_id_[i]; }
  [[nodiscard]] std::uint32_t city_id(std::size_t i) const { return city_id_[i]; }
  [[nodiscard]] double latitude(std::size_t i) const { return lat_[i]; }
  [[nodiscard]] double longitude(std::size_t i) const { return lon_[i]; }
  [[nodiscard]] std::uint32_t asn(std::size_t i) const { return asn_[i]; }
  [[nodiscard]] std::uint32_t org_id(std::size_t i) const { return org_id_[i]; }

  /// Materializes strings — format/test/save time only.
  [[nodiscard]] Geo6Record record(std::size_t i) const;

  [[nodiscard]] std::optional<Geo6Record> lookup_record(const Ipv6Address& addr) const {
    const std::size_t i = find(addr);
    if (i == npos) return std::nullopt;
    return record(i);
  }

  [[nodiscard]] std::size_t size() const { return starts_.size(); }

  Status save(const std::string& path) const;
  static Result<Geo6Database> load(const std::string& path);

 private:
  using Key = std::array<std::uint8_t, 16>;

  std::vector<Key> starts_;  // sorted; the search walks only this
  std::vector<Key> ends_;
  std::vector<std::uint32_t> country_id_;
  std::vector<std::uint32_t> city_id_;
  std::vector<double> lat_;
  std::vector<double> lon_;
  std::vector<std::uint32_t> asn_;
  std::vector<std::uint32_t> org_id_;
};

/// Derives a v6 database from an IPv4 site plan by embedding each v4
/// block at `prefix`::a.b.c.d — matching the traffic model's v6 mapping,
/// the way real dual-stack sites announce parallel v4/v6 blocks.
struct SiteSpec;  // geo/world.hpp
[[nodiscard]] Result<Geo6Database> derive_geo6(std::span<const SiteSpec> sites,
                                               std::array<std::uint8_t, 12> prefix = {
                                                   0x20, 0x01, 0x0d, 0xb8, 0x64, 0x64, 0, 0, 0, 0,
                                                   0, 0});

}  // namespace ruru
