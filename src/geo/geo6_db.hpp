#pragma once
// IPv6 -> location range database (IP2Location ships a v6 table too).
//
// Same shape as the IPv4 GeoDatabase: sorted, non-overlapping inclusive
// ranges over the 128-bit address space, binary-searched.  Addresses
// compare lexicographically over their 16 network-order bytes.

#include <array>
#include <span>
#include <string>
#include <vector>

#include "net/ip_address.hpp"
#include "util/result.hpp"

namespace ruru {

struct Geo6Record {
  Ipv6Address range_start;  ///< inclusive
  Ipv6Address range_end;    ///< inclusive
  std::string country;
  std::string city;
  double latitude = 0.0;
  double longitude = 0.0;
  std::uint32_t asn = 0;  ///< v6 table carries ASN inline
  std::string as_org;
};

class Geo6Database {
 public:
  Geo6Database() = default;

  static Result<Geo6Database> build(std::vector<Geo6Record> records);

  [[nodiscard]] const Geo6Record* lookup(const Ipv6Address& addr) const;

  [[nodiscard]] std::size_t size() const { return records_.size(); }
  [[nodiscard]] const std::vector<Geo6Record>& records() const { return records_; }

 private:
  std::vector<Geo6Record> records_;
};

/// Derives a v6 database from an IPv4 site plan by embedding each v4
/// block at `prefix`::a.b.c.d — matching the traffic model's v6 mapping,
/// the way real dual-stack sites announce parallel v4/v6 blocks.
struct SiteSpec;  // geo/world.hpp
[[nodiscard]] Result<Geo6Database> derive_geo6(std::span<const SiteSpec> sites,
                                               std::array<std::uint8_t, 12> prefix = {
                                                   0x20, 0x01, 0x0d, 0xb8, 0x64, 0x64, 0, 0, 0, 0,
                                                   0, 0});

}  // namespace ruru
