#pragma once
// Explicit big-endian loads/stores for wire formats.
//
// All header parsing goes through these instead of casting struct
// overlays onto buffers: no alignment traps, no strict-aliasing UB, and
// it works identically on any host endianness.

#include <cstdint>
#include <cstring>

namespace ruru {

[[nodiscard]] inline std::uint16_t load_be16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>((std::uint16_t{p[0]} << 8) | p[1]);
}

[[nodiscard]] inline std::uint32_t load_be32(const std::uint8_t* p) {
  return (std::uint32_t{p[0]} << 24) | (std::uint32_t{p[1]} << 16) |
         (std::uint32_t{p[2]} << 8) | std::uint32_t{p[3]};
}

[[nodiscard]] inline std::uint64_t load_be64(const std::uint8_t* p) {
  return (static_cast<std::uint64_t>(load_be32(p)) << 32) | load_be32(p + 4);
}

inline void store_be16(std::uint8_t* p, std::uint16_t v) {
  p[0] = static_cast<std::uint8_t>(v >> 8);
  p[1] = static_cast<std::uint8_t>(v);
}

inline void store_be32(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v >> 24);
  p[1] = static_cast<std::uint8_t>(v >> 16);
  p[2] = static_cast<std::uint8_t>(v >> 8);
  p[3] = static_cast<std::uint8_t>(v);
}

inline void store_be64(std::uint8_t* p, std::uint64_t v) {
  store_be32(p, static_cast<std::uint32_t>(v >> 32));
  store_be32(p + 4, static_cast<std::uint32_t>(v));
}

[[nodiscard]] inline std::uint16_t load_le16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>(std::uint16_t{p[0]} | (std::uint16_t{p[1]} << 8));
}

[[nodiscard]] inline std::uint32_t load_le32(const std::uint8_t* p) {
  return std::uint32_t{p[0]} | (std::uint32_t{p[1]} << 8) | (std::uint32_t{p[2]} << 16) |
         (std::uint32_t{p[3]} << 24);
}

inline void store_le16(std::uint8_t* p, std::uint16_t v) {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
}

inline void store_le32(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
  p[2] = static_cast<std::uint8_t>(v >> 16);
  p[3] = static_cast<std::uint8_t>(v >> 24);
}

}  // namespace ruru
