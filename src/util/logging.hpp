#pragma once
// Minimal leveled, thread-safe logger.
//
// Pipeline data paths never log per packet; logging is for control-plane
// events (start/stop, eviction pressure, anomaly alerts).  The logger is
// deliberately tiny: a global level, a mutex around the sink, and a
// stream-style macro so call sites stay readable.

#include <mutex>
#include <ostream>
#include <sstream>
#include <string_view>

namespace ruru {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

[[nodiscard]] std::string_view to_string(LogLevel level);

class Logger {
 public:
  /// Process-wide logger. Sinks to stderr by default.
  static Logger& instance();

  void set_level(LogLevel level) { level_ = level; }
  [[nodiscard]] LogLevel level() const { return level_; }
  [[nodiscard]] bool enabled(LogLevel level) const { return level >= level_; }

  /// Redirect output (tests capture into an ostringstream). Not owned.
  void set_sink(std::ostream* sink);

  void write(LogLevel level, std::string_view module, std::string_view message);

 private:
  Logger();
  LogLevel level_ = LogLevel::kInfo;
  std::ostream* sink_;
  std::mutex mu_;
};

}  // namespace ruru

// Usage: RURU_LOG(kInfo, "flow") << "evicted " << n << " entries";
#define RURU_LOG(level_enum, module)                                        \
  for (bool ruru_log_once =                                                 \
           ::ruru::Logger::instance().enabled(::ruru::LogLevel::level_enum); \
       ruru_log_once; ruru_log_once = false)                                \
  ::ruru::detail::LogLine(::ruru::LogLevel::level_enum, module).stream()

namespace ruru::detail {

class LogLine {
 public:
  LogLine(LogLevel level, std::string_view module) : level_(level), module_(module) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() { Logger::instance().write(level_, module_, stream_.str()); }
  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::string_view module_;
  std::ostringstream stream_;
};

}  // namespace ruru::detail
