#pragma once
// Minimal leveled, thread-safe logger.
//
// Pipeline data paths never log per packet; logging is for control-plane
// events (start/stop, eviction pressure, anomaly alerts).  The logger is
// deliberately tiny: a global level, a mutex around the sink, and a
// stream-style macro so call sites stay readable.
//
// Each line carries an ISO-8601 UTC timestamp and the writing thread's
// id, so interleaved multi-thread output stays attributable:
//   [2017-08-21T14:03:07.123Z] [INFO] [tid 139832] [flow] evicted 3 entries
// The initial level honours the RURU_LOG_LEVEL environment variable
// (debug|info|warn|error|off, case-insensitive) at first use.
//
// For warnings adjacent to the data path (mbuf exhaustion, HWM drops)
// use RURU_LOG_EVERY_N, which logs the 1st and then every nth occurrence
// per call site and suppresses the rest.

#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <ostream>
#include <sstream>
#include <string_view>

namespace ruru {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

[[nodiscard]] std::string_view to_string(LogLevel level);
/// "debug"/"INFO"/... -> level; nullopt on anything else.
[[nodiscard]] std::optional<LogLevel> parse_log_level(std::string_view text);

class Logger {
 public:
  /// Process-wide logger. Sinks to stderr by default; the initial level
  /// comes from RURU_LOG_LEVEL when set.
  static Logger& instance();

  void set_level(LogLevel level) { level_ = level; }
  [[nodiscard]] LogLevel level() const { return level_; }
  [[nodiscard]] bool enabled(LogLevel level) const { return level >= level_; }

  /// Redirect output (tests capture into an ostringstream). Not owned.
  void set_sink(std::ostream* sink);

  /// Timestamps/thread ids can be disabled for byte-exact golden tests.
  void set_timestamps(bool enabled) { timestamps_ = enabled; }

  void write(LogLevel level, std::string_view module, std::string_view message);

 private:
  Logger();
  LogLevel level_ = LogLevel::kInfo;
  bool timestamps_ = true;
  std::ostream* sink_;
  std::mutex mu_;
};

namespace detail {

/// Rate limiter for RURU_LOG_EVERY_N: true on occurrences 1, n+1, 2n+1...
/// The counter only advances when the level is enabled, so disabled
/// levels stay zero-cost.
inline bool log_every_n_hit(std::atomic<std::uint64_t>& counter, std::uint64_t n) {
  if (n <= 1) return true;
  return counter.fetch_add(1, std::memory_order_relaxed) % n == 0;
}

}  // namespace detail

}  // namespace ruru

// Usage: RURU_LOG(kInfo, "flow") << "evicted " << n << " entries";
#define RURU_LOG(level_enum, module)                                        \
  for (bool ruru_log_once =                                                 \
           ::ruru::Logger::instance().enabled(::ruru::LogLevel::level_enum); \
       ruru_log_once; ruru_log_once = false)                                \
  ::ruru::detail::LogLine(::ruru::LogLevel::level_enum, module).stream()

// Rate-limited variant for near-data-path warnings: logs the 1st and
// then every nth occurrence of this call site.
// Usage: RURU_LOG_EVERY_N(kWarn, "driver", 65536) << "mempool exhausted";
#define RURU_LOG_EVERY_N(level_enum, module, n)                                       \
  for (bool ruru_log_once =                                                           \
           ::ruru::Logger::instance().enabled(::ruru::LogLevel::level_enum) &&        \
           []() -> bool {                                                             \
             static ::std::atomic<::std::uint64_t> ruru_log_site_counter{0};          \
             return ::ruru::detail::log_every_n_hit(ruru_log_site_counter,            \
                                                    static_cast<::std::uint64_t>(n)); \
           }();                                                                       \
       ruru_log_once; ruru_log_once = false)                                          \
  ::ruru::detail::LogLine(::ruru::LogLevel::level_enum, module).stream()

namespace ruru::detail {

class LogLine {
 public:
  LogLine(LogLevel level, std::string_view module) : level_(level), module_(module) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() { Logger::instance().write(level_, module_, stream_.str()); }
  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::string_view module_;
  std::ostringstream stream_;
};

}  // namespace ruru::detail
