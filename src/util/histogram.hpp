#pragma once
// Log-linear latency histogram (HdrHistogram-style).
//
// Grafana in the paper displays min / max / median / mean per interval;
// the pipeline needs those online without storing raw samples.  Values
// are bucketed into 64 power-of-two major buckets, each split into 32
// linear minor buckets, giving <= ~3.2% relative error across the full
// int64 nanosecond range.

#include <cstdint>
#include <vector>

#include "util/time.hpp"

namespace ruru {

class Histogram {
 public:
  static constexpr int kMinorBits = 5;                 // 32 minor buckets
  static constexpr int kMinors = 1 << kMinorBits;
  static constexpr int kMajors = 64 - kMinorBits + 1;  // enough for any int64

  Histogram() : buckets_(static_cast<std::size_t>(kMajors) * kMinors, 0) {}

  void record(std::int64_t value);
  void record(Duration d) { record(d.ns); }

  /// Merge another histogram into this one (per-queue -> global rollup).
  void merge(const Histogram& other);

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] std::int64_t min() const { return count_ != 0 ? min_ : 0; }
  [[nodiscard]] std::int64_t max() const { return count_ != 0 ? max_ : 0; }
  [[nodiscard]] double mean() const {
    return count_ != 0 ? static_cast<double>(sum_) / static_cast<double>(count_) : 0.0;
  }

  /// Value at quantile q in [0,1] (q=0.5 -> median). Returns a bucket
  /// representative value; 0 when empty.
  [[nodiscard]] std::int64_t percentile(double q) const;

  void clear();

  /// Index of the bucket a value falls into (exposed for tests).
  [[nodiscard]] static std::size_t bucket_index(std::int64_t value);
  /// Representative (midpoint) value of a bucket.
  [[nodiscard]] static std::int64_t bucket_value(std::size_t index);

 private:
  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  std::int64_t sum_ = 0;
  std::int64_t min_ = 0;
  std::int64_t max_ = 0;
};

}  // namespace ruru
