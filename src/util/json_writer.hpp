#pragma once
// Streaming JSON writer.
//
// The viz feed serializes thousands of arc records per frame; this
// writer appends directly into a reusable std::string with correct
// escaping and no intermediate DOM.  It is a write-only API: scopes are
// opened/closed explicitly and misuse is caught by assertions.

#include <cstdint>
#include <string>
#include <string_view>

namespace ruru {

class JsonWriter {
 public:
  JsonWriter() { out_.reserve(256); }

  /// Reuse the writer for a fresh document (keeps string capacity).
  void reset();

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Key inside an object; must be followed by a value or scope-open.
  JsonWriter& key(std::string_view k);

  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(double v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(unsigned v) { return value(static_cast<std::uint64_t>(v)); }
  JsonWriter& value(bool v);
  JsonWriter& null();

  [[nodiscard]] const std::string& str() const { return out_; }
  [[nodiscard]] std::string take() { return std::move(out_); }

 private:
  void comma_if_needed();
  void append_escaped(std::string_view s);

  std::string out_;
  bool need_comma_ = false;
};

}  // namespace ruru
