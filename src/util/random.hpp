#pragma once
// Deterministic PRNG (PCG32) + distribution helpers.
//
// All synthetic workloads must be reproducible from a single seed, so the
// traffic model, geo world generator and tests all use this instead of
// std::mt19937 (whose distributions are not portable across libstdc++
// versions).

#include <cmath>
#include <cstdint>

namespace ruru {

/// PCG32 (Melissa O'Neill). Small, fast, statistically solid, and the
/// output sequence is fully specified so fixtures can hard-code values.
class Pcg32 {
 public:
  explicit Pcg32(std::uint64_t seed = 0x853c49e6748fea9bULL,
                 std::uint64_t stream = 0xda3e39cb94b95bdbULL) {
    state_ = 0;
    inc_ = (stream << 1u) | 1u;
    (void)next_u32();
    state_ += seed;
    (void)next_u32();
  }

  std::uint32_t next_u32() {
    const std::uint64_t old = state_;
    state_ = old * 6364136223846793005ULL + inc_;
    const auto xorshifted = static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
    const auto rot = static_cast<std::uint32_t>(old >> 59u);
    return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
  }

  std::uint64_t next_u64() {
    return (static_cast<std::uint64_t>(next_u32()) << 32) | next_u32();
  }

  /// Uniform in [0, bound). Rejection-free Lemire reduction.
  std::uint32_t bounded(std::uint32_t bound) {
    if (bound == 0) return 0;
    const std::uint64_t m = static_cast<std::uint64_t>(next_u32()) * bound;
    return static_cast<std::uint32_t>(m >> 32);
  }

  /// Uniform double in [0, 1).
  double uniform() { return static_cast<double>(next_u32()) * 0x1.0p-32; }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Exponential with the given mean (> 0).
  double exponential(double mean) {
    double u = uniform();
    if (u <= 0.0) u = 0x1.0p-32;  // avoid log(0)
    return -mean * std::log(u);
  }

  /// Standard normal via Box-Muller (one value per call; simple > fast here).
  double normal(double mean = 0.0, double stddev = 1.0) {
    double u1 = uniform();
    if (u1 <= 0.0) u1 = 0x1.0p-32;
    const double u2 = uniform();
    const double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
    return mean + stddev * z;
  }

  /// Pareto with shape alpha and minimum xm (heavy-tailed flow sizes).
  double pareto(double alpha, double xm) {
    double u = uniform();
    if (u <= 0.0) u = 0x1.0p-32;
    return xm / std::pow(u, 1.0 / alpha);
  }

  /// True with probability p.
  bool chance(double p) { return uniform() < p; }

 private:
  std::uint64_t state_;
  std::uint64_t inc_;
};

}  // namespace ruru
