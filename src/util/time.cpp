#include "util/time.hpp"

#include <cinttypes>
#include <cmath>
#include <cstdio>

namespace ruru {

std::string to_string(Duration d) {
  char buf[64];
  const double abs_ns = std::abs(static_cast<double>(d.ns));
  if (abs_ns < 1e3) {
    std::snprintf(buf, sizeof buf, "%" PRId64 " ns", d.ns);
  } else if (abs_ns < 1e6) {
    std::snprintf(buf, sizeof buf, "%.1f us", static_cast<double>(d.ns) / 1e3);
  } else if (abs_ns < 1e9) {
    std::snprintf(buf, sizeof buf, "%.1f ms", static_cast<double>(d.ns) / 1e6);
  } else {
    std::snprintf(buf, sizeof buf, "%.3f s", static_cast<double>(d.ns) / 1e9);
  }
  return buf;
}

std::string to_string(Timestamp t) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "t=%.3fs", t.to_sec());
  return buf;
}

}  // namespace ruru
