#pragma once
// Small expected-like result type (gcc 12 has no std::expected).
//
// Error handling policy (per Core Guidelines E.*): exceptions for
// programming errors / constructor failures; Result<T> for expected
// runtime failures on I/O and parse boundaries (bad pcap file, short
// packet, missing geo record) where the caller decides.

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace ruru {

struct Error {
  std::string message;
};

[[nodiscard]] inline Error make_error(std::string message) {
  return Error{std::move(message)};
}

template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}          // NOLINT implicit ok
  Result(Error error) : value_(std::move(error)) {}      // NOLINT implicit err

  [[nodiscard]] bool ok() const { return std::holds_alternative<T>(value_); }
  explicit operator bool() const { return ok(); }

  [[nodiscard]] const T& value() const& {
    assert(ok());
    return std::get<T>(value_);
  }
  [[nodiscard]] T& value() & {
    assert(ok());
    return std::get<T>(value_);
  }
  [[nodiscard]] T&& value() && {
    assert(ok());
    return std::get<T>(std::move(value_));
  }

  [[nodiscard]] const std::string& error() const {
    assert(!ok());
    return std::get<Error>(value_).message;
  }

  [[nodiscard]] T value_or(T fallback) const& {
    return ok() ? std::get<T>(value_) : std::move(fallback);
  }

 private:
  std::variant<T, Error> value_;
};

/// Result<void>: success or an error message.
class Status {
 public:
  Status() = default;                                  // ok
  Status(Error error) : error_(std::move(error.message)), failed_(true) {}  // NOLINT

  [[nodiscard]] bool ok() const { return !failed_; }
  explicit operator bool() const { return ok(); }
  [[nodiscard]] const std::string& error() const {
    assert(failed_);
    return error_;
  }

 private:
  std::string error_;
  bool failed_ = false;
};

}  // namespace ruru
