#include "util/histogram.hpp"

#include <algorithm>
#include <bit>

namespace ruru {

std::size_t Histogram::bucket_index(std::int64_t value) {
  if (value < 0) value = 0;
  const auto v = static_cast<std::uint64_t>(value);
  if (v < kMinors) {
    // Values below 32 land in major bucket 0, identity-mapped.
    return static_cast<std::size_t>(v);
  }
  const int msb = 63 - std::countl_zero(v);          // >= kMinorBits
  const int major = msb - kMinorBits + 1;            // 1..kMajors-1
  const auto minor = static_cast<std::size_t>((v >> (msb - kMinorBits)) & (kMinors - 1));
  return static_cast<std::size_t>(major) * kMinors + minor;
}

std::int64_t Histogram::bucket_value(std::size_t index) {
  const std::size_t major = index / kMinors;
  const std::size_t minor = index % kMinors;
  if (major == 0) return static_cast<std::int64_t>(minor);
  const int msb = static_cast<int>(major) + kMinorBits - 1;
  const std::uint64_t base = (1ULL << msb) | (static_cast<std::uint64_t>(minor) << (msb - kMinorBits));
  const std::uint64_t width = 1ULL << (msb - kMinorBits);
  return static_cast<std::int64_t>(base + width / 2);
}

void Histogram::record(std::int64_t value) {
  if (value < 0) value = 0;
  const std::size_t idx = bucket_index(value);
  ++buckets_[idx];
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
}

void Histogram::merge(const Histogram& other) {
  for (std::size_t i = 0; i < buckets_.size(); ++i) buckets_[i] += other.buckets_[i];
  if (other.count_ != 0) {
    if (count_ == 0) {
      min_ = other.min_;
      max_ = other.max_;
    } else {
      min_ = std::min(min_, other.min_);
      max_ = std::max(max_, other.max_);
    }
    count_ += other.count_;
    sum_ += other.sum_;
  }
}

std::int64_t Histogram::percentile(double q) const {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the target sample, 1-based.
  const auto target =
      static_cast<std::uint64_t>(q * static_cast<double>(count_ - 1)) + 1;
  // The extreme ranks are known exactly; bucket midpoints would be off
  // by up to half a bucket width.
  if (target <= 1) return min_;
  if (target >= count_) return max_;
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen >= target) {
      // Clamp representatives so p0/p100 match true min/max.
      return std::clamp(bucket_value(i), min_, max_);
    }
  }
  return max_;
}

void Histogram::clear() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_ = 0;
  min_ = 0;
  max_ = 0;
}

}  // namespace ruru
