#pragma once
// Lock-free single-producer / single-consumer ring.
//
// This is the queue shape DPDK uses between a NIC RX queue and the lcore
// polling it: exactly one producer (the NIC dispatch) and one consumer
// (the worker).  Power-of-two capacity, acquire/release fences only, and
// head/tail on separate cache lines to avoid false sharing.

#include <atomic>
#include <cstddef>
#include <new>
#include <optional>
#include <utility>
#include <vector>

namespace ruru {

// Fixed 64: std::hardware_destructive_interference_size is ABI-unstable
// (gcc -Winterference-size) and 64 is right for every target we run on.
inline constexpr std::size_t kCacheLine = 64;

template <typename T>
class SpscRing {
 public:
  /// Capacity is rounded up to the next power of two; usable slots =
  /// capacity (full/empty disambiguated by monotonically increasing
  /// indices).
  explicit SpscRing(std::size_t capacity) {
    std::size_t cap = 1;
    while (cap < capacity) cap <<= 1;
    mask_ = cap - 1;
    slots_.resize(cap);
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  [[nodiscard]] std::size_t capacity() const { return mask_ + 1; }

  [[nodiscard]] std::size_t size() const {
    return head_.load(std::memory_order_acquire) - tail_.load(std::memory_order_acquire);
  }

  /// Producer side. Returns false when full.
  [[nodiscard]] bool try_push(T value) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    const std::size_t tail = tail_.load(std::memory_order_acquire);
    if (head - tail >= capacity()) return false;
    slots_[head & mask_] = std::move(value);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Burst enqueue from `items`, DPDK tx_burst style: moves as many
  /// leading items as fit and publishes them with a single release
  /// store. Returns the count pushed (< `count` when the ring filled;
  /// the unpushed tail is left intact in `items`).
  std::size_t push_burst(T* items, std::size_t count) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    const std::size_t tail = tail_.load(std::memory_order_acquire);
    const std::size_t free_slots = capacity() - (head - tail);
    std::size_t n = count < free_slots ? count : free_slots;
    for (std::size_t i = 0; i < n; ++i) slots_[(head + i) & mask_] = std::move(items[i]);
    head_.store(head + n, std::memory_order_release);
    return n;
  }

  /// Consumer side. Empty optional when the ring is empty.
  [[nodiscard]] std::optional<T> try_pop() {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    const std::size_t head = head_.load(std::memory_order_acquire);
    if (tail == head) return std::nullopt;
    T value = std::move(slots_[tail & mask_]);
    tail_.store(tail + 1, std::memory_order_release);
    return value;
  }

  /// Burst dequeue into `out`, DPDK rx_burst style. Returns count popped.
  std::size_t pop_burst(T* out, std::size_t max_count) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    const std::size_t head = head_.load(std::memory_order_acquire);
    std::size_t n = head - tail;
    if (n > max_count) n = max_count;
    for (std::size_t i = 0; i < n; ++i) out[i] = std::move(slots_[(tail + i) & mask_]);
    tail_.store(tail + n, std::memory_order_release);
    return n;
  }

 private:
  std::vector<T> slots_;
  std::size_t mask_ = 0;
  alignas(kCacheLine) std::atomic<std::size_t> head_{0};
  alignas(kCacheLine) std::atomic<std::size_t> tail_{0};
};

}  // namespace ruru
