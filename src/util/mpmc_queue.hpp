#pragma once
// Bounded multi-producer / multi-consumer queue with close semantics.
//
// Used on control-plane-ish paths (analytics worker pools, bus fan-out)
// where blocking is acceptable and multiple producers/consumers meet.
// The fast path (NIC -> worker) uses SpscRing instead.

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace ruru {

template <typename T>
class MpmcQueue {
 public:
  explicit MpmcQueue(std::size_t capacity) : capacity_(capacity) {}

  MpmcQueue(const MpmcQueue&) = delete;
  MpmcQueue& operator=(const MpmcQueue&) = delete;

  /// Blocking push; returns false if the queue was closed.
  bool push(T value) {
    std::unique_lock lock(mu_);
    not_full_.wait(lock, [&] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(value));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push; returns false when full or closed.
  bool try_push(T value) {
    {
      std::lock_guard lock(mu_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(value));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocking pop; empty optional means closed-and-drained.
  std::optional<T> pop() {
    std::unique_lock lock(mu_);
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T value = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return value;
  }

  /// Non-blocking pop.
  std::optional<T> try_pop() {
    std::unique_lock lock(mu_);
    if (items_.empty()) return std::nullopt;
    T value = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return value;
  }

  /// After close(): pushes fail, pops drain remaining items then return
  /// nullopt. Idempotent.
  void close() {
    {
      std::lock_guard lock(mu_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  [[nodiscard]] bool closed() const {
    std::lock_guard lock(mu_);
    return closed_;
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard lock(mu_);
    return items_.size();
  }

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace ruru
