#include "util/logging.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <functional>
#include <iostream>
#include <thread>

namespace ruru {

std::string_view to_string(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

std::optional<LogLevel> parse_log_level(std::string_view text) {
  std::string lower;
  lower.reserve(text.size());
  for (const char c : text) {
    lower.push_back(c >= 'A' && c <= 'Z' ? static_cast<char>(c - 'A' + 'a') : c);
  }
  if (lower == "debug") return LogLevel::kDebug;
  if (lower == "info") return LogLevel::kInfo;
  if (lower == "warn" || lower == "warning") return LogLevel::kWarn;
  if (lower == "error") return LogLevel::kError;
  if (lower == "off" || lower == "none") return LogLevel::kOff;
  return std::nullopt;
}

namespace {

/// "[2017-08-21T14:03:07.123Z]" — UTC wall clock, millisecond precision.
void append_iso8601_now(std::string& out) {
  const auto now = std::chrono::system_clock::now();
  const std::time_t secs = std::chrono::system_clock::to_time_t(now);
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      now.time_since_epoch())
                      .count() %
                  1000;
  std::tm tm_utc{};
  gmtime_r(&secs, &tm_utc);
  char buf[40];
  std::snprintf(buf, sizeof buf, "[%04d-%02d-%02dT%02d:%02d:%02d.%03dZ]",
                tm_utc.tm_year + 1900, tm_utc.tm_mon + 1, tm_utc.tm_mday, tm_utc.tm_hour,
                tm_utc.tm_min, tm_utc.tm_sec, static_cast<int>(ms));
  out += buf;
}

std::uint64_t thread_tag() {
  // Stable per-thread tag; hashed because std::thread::id is opaque.
  return std::hash<std::thread::id>{}(std::this_thread::get_id()) % 1'000'000;
}

}  // namespace

Logger::Logger() : sink_(&std::cerr) {
  if (const char* env = std::getenv("RURU_LOG_LEVEL")) {
    if (const auto level = parse_log_level(env)) level_ = *level;
  }
}

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::set_sink(std::ostream* sink) {
  std::lock_guard lock(mu_);
  sink_ = sink != nullptr ? sink : &std::cerr;
}

void Logger::write(LogLevel level, std::string_view module, std::string_view message) {
  if (!enabled(level)) return;
  std::string line;
  line.reserve(64 + module.size() + message.size());
  if (timestamps_) {
    append_iso8601_now(line);
    line += " ";
  }
  line += '[';
  line += to_string(level);
  line += "] ";
  if (timestamps_) {
    line += "[tid ";
    line += std::to_string(thread_tag());
    line += "] ";
  }
  line += '[';
  line += module;
  line += "] ";
  line += message;
  line += '\n';
  std::lock_guard lock(mu_);
  (*sink_) << line;
}

}  // namespace ruru
