#include "util/json_writer.hpp"

#include <cinttypes>
#include <cmath>
#include <cstdio>

namespace ruru {

void JsonWriter::reset() {
  out_.clear();
  need_comma_ = false;
}

void JsonWriter::comma_if_needed() {
  if (need_comma_) out_.push_back(',');
}

JsonWriter& JsonWriter::begin_object() {
  comma_if_needed();
  out_.push_back('{');
  need_comma_ = false;
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  out_.push_back('}');
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  comma_if_needed();
  out_.push_back('[');
  need_comma_ = false;
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  out_.push_back(']');
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  comma_if_needed();
  out_.push_back('"');
  append_escaped(k);
  out_.append("\":");
  need_comma_ = false;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  comma_if_needed();
  out_.push_back('"');
  append_escaped(v);
  out_.push_back('"');
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  comma_if_needed();
  if (std::isfinite(v)) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.6g", v);
    out_.append(buf);
  } else {
    out_.append("null");  // JSON has no NaN/Inf
  }
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  comma_if_needed();
  char buf[24];
  std::snprintf(buf, sizeof buf, "%" PRId64, v);
  out_.append(buf);
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  comma_if_needed();
  char buf[24];
  std::snprintf(buf, sizeof buf, "%" PRIu64, v);
  out_.append(buf);
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  comma_if_needed();
  out_.append(v ? "true" : "false");
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::null() {
  comma_if_needed();
  out_.append("null");
  need_comma_ = true;
  return *this;
}

void JsonWriter::append_escaped(std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"': out_.append("\\\""); break;
      case '\\': out_.append("\\\\"); break;
      case '\n': out_.append("\\n"); break;
      case '\r': out_.append("\\r"); break;
      case '\t': out_.append("\\t"); break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out_.append(buf);
        } else {
          out_.push_back(c);
        }
    }
  }
}

}  // namespace ruru
