#pragma once
// Token-bucket rate limiter (used by the viz feed to cap frames/sec and
// by anomaly alert throttling).  Pure function of injected timestamps so
// it is fully testable under SimClock.

#include <algorithm>
#include <cstdint>

#include "util/time.hpp"

namespace ruru {

class TokenBucket {
 public:
  /// `rate_per_sec` tokens accrue per second up to `burst` capacity.
  TokenBucket(double rate_per_sec, double burst)
      : rate_(rate_per_sec), burst_(burst), tokens_(burst) {}

  /// Try to take `n` tokens at time `now`. Returns true when admitted.
  bool allow(Timestamp now, double n = 1.0) {
    refill(now);
    if (tokens_ + 1e-9 >= n) {
      tokens_ -= n;
      return true;
    }
    return false;
  }

  [[nodiscard]] double tokens() const { return tokens_; }

 private:
  void refill(Timestamp now) {
    if (!started_) {
      last_ = now;
      started_ = true;
      return;
    }
    if (now <= last_) return;
    const double dt = (now - last_).to_sec();
    tokens_ = std::min(burst_, tokens_ + dt * rate_);
    last_ = now;
  }

  double rate_;
  double burst_;
  double tokens_;
  Timestamp last_{};
  bool started_ = false;
};

}  // namespace ruru
