#pragma once
// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) for on-disk
// record framing.  Table-driven, table built at compile time.

#include <array>
#include <cstddef>
#include <cstdint>

namespace ruru {

namespace detail {

constexpr std::array<std::uint32_t, 256> make_crc32_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

inline constexpr std::array<std::uint32_t, 256> kCrc32Table = make_crc32_table();

}  // namespace detail

/// One-shot CRC-32 of a byte span.
[[nodiscard]] inline std::uint32_t crc32(const std::uint8_t* data, std::size_t len) {
  std::uint32_t c = 0xFFFF'FFFFu;
  for (std::size_t i = 0; i < len; ++i) {
    c = detail::kCrc32Table[(c ^ data[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFF'FFFFu;
}

}  // namespace ruru
