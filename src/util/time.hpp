#pragma once
// Nanosecond timestamps and clocks.
//
// Ruru records three sub-microsecond timestamps per TCP flow (SYN,
// SYN-ACK, ACK).  Everything in the pipeline speaks `Timestamp`:
// a signed 64-bit count of nanoseconds since an arbitrary epoch.
// The simulated substrate uses a manually-advanced `SimClock`; live
// components use `SystemClock`.

#include <chrono>
#include <compare>
#include <cstdint>
#include <string>

namespace ruru {

/// A point in time, nanoseconds since an arbitrary epoch.
/// Plain value type: cheap to copy, totally ordered.
struct Timestamp {
  std::int64_t ns = 0;

  friend constexpr auto operator<=>(Timestamp, Timestamp) = default;

  static constexpr Timestamp from_ns(std::int64_t v) { return Timestamp{v}; }
  static constexpr Timestamp from_us(std::int64_t v) { return Timestamp{v * 1'000}; }
  static constexpr Timestamp from_ms(std::int64_t v) { return Timestamp{v * 1'000'000}; }
  static constexpr Timestamp from_sec(double v) {
    return Timestamp{static_cast<std::int64_t>(v * 1e9)};
  }

  [[nodiscard]] constexpr double to_sec() const { return static_cast<double>(ns) / 1e9; }
  [[nodiscard]] constexpr double to_ms() const { return static_cast<double>(ns) / 1e6; }
  [[nodiscard]] constexpr std::int64_t to_us() const { return ns / 1'000; }
};

/// A signed span of time in nanoseconds.
struct Duration {
  std::int64_t ns = 0;

  friend constexpr auto operator<=>(Duration, Duration) = default;

  static constexpr Duration from_ns(std::int64_t v) { return Duration{v}; }
  static constexpr Duration from_us(std::int64_t v) { return Duration{v * 1'000}; }
  static constexpr Duration from_ms(std::int64_t v) { return Duration{v * 1'000'000}; }
  static constexpr Duration from_sec(double v) {
    return Duration{static_cast<std::int64_t>(v * 1e9)};
  }

  [[nodiscard]] constexpr double to_sec() const { return static_cast<double>(ns) / 1e9; }
  [[nodiscard]] constexpr double to_ms() const { return static_cast<double>(ns) / 1e6; }
};

constexpr Duration operator-(Timestamp a, Timestamp b) { return Duration{a.ns - b.ns}; }
constexpr Timestamp operator+(Timestamp t, Duration d) { return Timestamp{t.ns + d.ns}; }
constexpr Timestamp operator-(Timestamp t, Duration d) { return Timestamp{t.ns - d.ns}; }
constexpr Duration operator+(Duration a, Duration b) { return Duration{a.ns + b.ns}; }
constexpr Duration operator-(Duration a, Duration b) { return Duration{a.ns - b.ns}; }
constexpr Duration operator*(Duration d, std::int64_t k) { return Duration{d.ns * k}; }
constexpr Duration operator/(Duration d, std::int64_t k) { return Duration{d.ns / k}; }

/// Formats a duration with an adaptive unit, e.g. "4000.0 ms" or "812 ns".
[[nodiscard]] std::string to_string(Duration d);
/// Formats a timestamp as seconds with millisecond precision, e.g. "t=12.345s".
[[nodiscard]] std::string to_string(Timestamp t);

/// Abstract time source so pipeline stages can run against simulated time.
class Clock {
 public:
  virtual ~Clock() = default;
  [[nodiscard]] virtual Timestamp now() const = 0;
};

/// Wall clock backed by std::chrono::steady_clock.
class SystemClock final : public Clock {
 public:
  [[nodiscard]] Timestamp now() const override {
    return Timestamp{std::chrono::duration_cast<std::chrono::nanoseconds>(
                         std::chrono::steady_clock::now().time_since_epoch())
                         .count()};
  }
};

/// Manually-advanced clock for deterministic simulation and tests.
class SimClock final : public Clock {
 public:
  SimClock() = default;
  explicit SimClock(Timestamp start) : now_(start) {}

  [[nodiscard]] Timestamp now() const override { return now_; }
  void advance(Duration d) { now_ = now_ + d; }
  void set(Timestamp t) { now_ = t; }

 private:
  Timestamp now_{};
};

}  // namespace ruru
