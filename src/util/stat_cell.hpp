#pragma once
// Single-writer statistics cell.
//
// Every per-stage stats struct (NicStats, WorkerStats, TrackerStats, ...)
// is written by exactly one thread — the stage that owns it — but is now
// also read live by the metrics snapshot thread.  A plain uint64 would be
// a data race; a fetch_add would put a lock prefix on the per-packet
// path.  StatCell threads the needle: the writer does a relaxed
// load + store (no RMW, same cost as a plain increment on x86), readers
// do a relaxed load and never see a torn value.
//
// The single-writer contract is the point: two threads incrementing the
// same cell can lose updates.  Shard per writer (one stats struct per
// queue/worker, merged on read) exactly as the stages already do.

#include <atomic>
#include <cstdint>
#include <ostream>

namespace ruru {

class StatCell {
 public:
  constexpr StatCell() = default;
  constexpr StatCell(std::uint64_t v) : v_(v) {}  // NOLINT: implicit by design

  // Copy via relaxed loads/stores so the stat structs keep value
  // semantics (summaries copy them wholesale off the hot path).
  StatCell(const StatCell& other) : v_(other.load()) {}
  StatCell& operator=(const StatCell& other) {
    store(other.load());
    return *this;
  }
  StatCell& operator=(std::uint64_t v) {
    store(v);
    return *this;
  }

  StatCell& operator++() {
    store(load() + 1);
    return *this;
  }
  StatCell& operator--() {
    store(load() - 1);
    return *this;
  }
  StatCell& operator+=(std::uint64_t n) {
    store(load() + n);
    return *this;
  }
  StatCell& operator-=(std::uint64_t n) {
    store(load() - n);
    return *this;
  }

  operator std::uint64_t() const { return load(); }  // NOLINT: drop-in for uint64 fields

  [[nodiscard]] std::uint64_t load() const { return v_.load(std::memory_order_relaxed); }
  void store(std::uint64_t v) { v_.store(v, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

inline std::ostream& operator<<(std::ostream& os, const StatCell& c) { return os << c.load(); }

}  // namespace ruru
