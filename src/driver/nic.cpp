#include "driver/nic.hpp"

#include "net/packet_view.hpp"
#include "obs/trace.hpp"
#include "obs/tsc_clock.hpp"
#include "util/byte_order.hpp"
#include "util/logging.hpp"

namespace ruru {

namespace {

// Flight-recorder stamping at the RX descriptor, the analogue of a
// NIC writing a flow-director mark.  trace_id is written on every
// packet while sampling is on (recycled mbufs must not keep a stale
// id); the TSC read happens only for the 1-in-N selected packets.
// Cost with sampling off: one predictable branch.
inline void stamp_trace(Mbuf& m, std::uint32_t hash, std::uint32_t sample_n) {
  if constexpr (!obs::kTraceCompiled) {
    (void)m;
    (void)hash;
    (void)sample_n;
    return;
  } else {
    if (sample_n == 0) return;
    m.trace_id = obs::trace_id_for(hash, sample_n);
    if (m.trace_id != 0) m.ingest_ns = obs::trace_now_ns();
  }
}

}  // namespace

SimNic::SimNic(const NicConfig& config, Mempool& pool)
    : config_(config), pool_(pool), rss_table_(config.rss_key) {
  queues_.reserve(config_.num_queues);
  staging_.resize(config_.num_queues);
  staged_frames_.resize(config_.num_queues);
  lane_stats_.resize(config_.num_queues);
  lane_scratch_.resize(config_.num_queues);
  for (std::uint16_t q = 0; q < config_.num_queues; ++q) {
    queues_.push_back(std::make_unique<SpscRing<MbufPtr>>(config_.queue_depth));
  }
}

NicStats SimNic::stats_totals() const {
  NicStats total = stats_;  // StatCell copies via relaxed loads
  for (const NicStats& lane : lane_stats_) {
    total.rx_packets += lane.rx_packets.load();
    total.rx_bytes += lane.rx_bytes.load();
    total.dropped_no_mbuf += lane.dropped_no_mbuf.load();
    total.dropped_queue_full += lane.dropped_queue_full.load();
    total.dropped_oversize += lane.dropped_oversize.load();
    total.dropped_misrouted += lane.dropped_misrouted.load();
  }
  return total;
}

std::uint32_t SimNic::hash_frame(std::span<const std::uint8_t> frame) const {
  // Fast fixed-offset extraction, the way NIC RSS engines parse: only
  // plain TCP/IPv4 and TCP/IPv6 get 4-tuple hashes; everything else
  // hashes to 0 (queue 0), which is what many NICs do for non-IP.
  if (frame.size() < 14) return 0;
  const std::uint16_t ether_type = load_be16(&frame[12]);
  if (ether_type == kEtherTypeIpv4) {
    if (frame.size() < 14 + 20) return 0;
    const std::uint8_t ihl = frame[14] & 0x0f;
    // A header shorter than 20 bytes is malformed; hashing "ports" read
    // from inside the IP header would spray garbage across queues.
    if (ihl < 5) return 0;
    const std::size_t l4 = 14 + std::size_t{ihl} * 4;
    if (frame[14 + 9] != kIpProtoTcp || frame.size() < l4 + 4) return 0;
    const Ipv4Address src(load_be32(&frame[14 + 12]));
    const Ipv4Address dst(load_be32(&frame[14 + 16]));
    const std::uint16_t sp = load_be16(&frame[l4]);
    const std::uint16_t dp = load_be16(&frame[l4 + 2]);
    return rss_table_.hash_tcp4(src, dst, sp, dp);
  }
  if (ether_type == kEtherTypeIpv6) {
    if (frame.size() < 14 + 40 + 4) return 0;
    if (frame[14 + 6] != kIpProtoTcp) return 0;
    std::array<std::uint8_t, 16> s{};
    std::array<std::uint8_t, 16> d{};
    std::copy_n(&frame[14 + 8], 16, s.begin());
    std::copy_n(&frame[14 + 24], 16, d.begin());
    const std::size_t l4 = 14 + 40;
    return rss_table_.hash_tcp6(Ipv6Address(s), Ipv6Address(d), load_be16(&frame[l4]),
                                load_be16(&frame[l4 + 2]));
  }
  return 0;
}

bool SimNic::inject(std::span<const std::uint8_t> frame, Timestamp rx_time) {
  MbufPtr mbuf = pool_.alloc();
  if (!mbuf) {
    ++stats_.dropped_no_mbuf;
    RURU_LOG_EVERY_N(kWarn, "driver", 65536)
        << "mempool exhausted, dropping frames (total " << stats_.dropped_no_mbuf << ")";
    return false;
  }
  if (!mbuf->assign(frame)) {
    ++stats_.dropped_oversize;
    return false;
  }
  mbuf->timestamp = rx_time;
  mbuf->rss_hash = hash_frame(frame);
  mbuf->port_id = config_.port_id;
  stamp_trace(*mbuf, mbuf->rss_hash, config_.trace_sample_n);
  const std::uint16_t queue = static_cast<std::uint16_t>(mbuf->rss_hash % config_.num_queues);
  mbuf->queue_id = queue;
  if (!queues_[queue]->try_push(std::move(mbuf))) {
    ++stats_.dropped_queue_full;
    return false;
  }
  ++stats_.rx_packets;
  stats_.rx_bytes += frame.size();
  return true;
}

std::size_t SimNic::inject_burst(std::span<const RxFrame> frames, bool* queued) {
  // Stage: alloc + copy + hash each frame, grouped by destination queue.
  for (std::uint32_t i = 0; i < frames.size(); ++i) {
    if (queued != nullptr) queued[i] = false;
    MbufPtr mbuf = pool_.alloc();
    if (!mbuf) {
      ++stats_.dropped_no_mbuf;
      RURU_LOG_EVERY_N(kWarn, "driver", 65536)
          << "mempool exhausted, dropping frames (total " << stats_.dropped_no_mbuf << ")";
      continue;
    }
    if (!mbuf->assign(frames[i].data)) {
      ++stats_.dropped_oversize;
      continue;
    }
    mbuf->timestamp = frames[i].rx_time;
    mbuf->rss_hash = hash_frame(frames[i].data);
    mbuf->port_id = config_.port_id;
    stamp_trace(*mbuf, mbuf->rss_hash, config_.trace_sample_n);
    const std::uint16_t queue = static_cast<std::uint16_t>(mbuf->rss_hash % config_.num_queues);
    mbuf->queue_id = queue;
    staging_[queue].push_back(std::move(mbuf));
    staged_frames_[queue].push_back(i);
  }

  // Publish: one push_burst (one release store) per non-empty queue.
  std::size_t total = 0;
  for (std::uint16_t q = 0; q < config_.num_queues; ++q) {
    auto& staged = staging_[q];
    if (staged.empty()) continue;
    const std::size_t pushed = queues_[q]->push_burst(staged.data(), staged.size());
    for (std::size_t j = 0; j < pushed; ++j) {
      const std::uint32_t frame_index = staged_frames_[q][j];
      ++stats_.rx_packets;
      stats_.rx_bytes += frames[frame_index].data.size();
      if (queued != nullptr) queued[frame_index] = true;
    }
    for (std::size_t j = pushed; j < staged.size(); ++j) {
      ++stats_.dropped_queue_full;
      staged[j].reset();  // return the mbuf to the pool
    }
    total += pushed;
    staged.clear();
    staged_frames_[q].clear();
  }
  return total;
}

std::size_t SimNic::inject_shard(std::uint16_t queue, std::span<const RxFrame> frames,
                                 bool* queued) {
  NicStats& stats = lane_stats_[queue];
  LaneScratch& scratch = lane_scratch_[queue];
  scratch.mbufs.clear();
  scratch.frame_index.clear();
  if (scratch.mbufs.capacity() < frames.size()) {
    scratch.mbufs.reserve(frames.size());
    scratch.frame_index.reserve(frames.size());
  }

  // One mempool lock for the whole burst: grab the worst-case mbuf count
  // up front, return the unused tail after staging.
  scratch.mbufs.resize(frames.size());
  const std::size_t got = pool_.alloc_bulk(scratch.mbufs);
  std::size_t staged = 0;  // mbufs[0..staged) carry assigned frames, in order
  for (std::uint32_t i = 0; i < frames.size(); ++i) {
    if (queued != nullptr) queued[i] = false;
    const std::uint32_t hash = hash_frame(frames[i].data);
    if (static_cast<std::uint16_t>(hash % config_.num_queues) != queue) {
      ++stats.dropped_misrouted;
      RURU_LOG_EVERY_N(kWarn, "driver", 65536)
          << "lane " << queue << ": frame hashes to queue " << (hash % config_.num_queues)
          << ", dropping (misrouted shard)";
      continue;
    }
    if (staged >= got) {
      ++stats.dropped_no_mbuf;
      RURU_LOG_EVERY_N(kWarn, "driver", 65536)
          << "mempool exhausted, dropping frames (lane " << queue << ")";
      continue;
    }
    MbufPtr& mbuf = scratch.mbufs[staged];
    if (!mbuf->assign(frames[i].data)) {
      ++stats.dropped_oversize;
      continue;  // slot keeps its mbuf; the next frame reuses it
    }
    mbuf->timestamp = frames[i].rx_time;
    mbuf->rss_hash = hash;
    mbuf->port_id = config_.port_id;
    mbuf->queue_id = queue;
    stamp_trace(*mbuf, hash, config_.trace_sample_n);
    scratch.frame_index.push_back(i);
    ++staged;
  }
  // Release unused pre-allocated mbufs back to the pool.
  for (std::size_t j = staged; j < got; ++j) scratch.mbufs[j].reset();
  const std::size_t pushed = queues_[queue]->push_burst(scratch.mbufs.data(), staged);
  for (std::size_t j = 0; j < pushed; ++j) {
    const std::uint32_t frame_index = scratch.frame_index[j];
    ++stats.rx_packets;
    stats.rx_bytes += frames[frame_index].data.size();
    if (queued != nullptr) queued[frame_index] = true;
  }
  for (std::size_t j = pushed; j < staged; ++j) {
    ++stats.dropped_queue_full;
    scratch.mbufs[j].reset();  // return the mbuf to the pool
  }
  scratch.mbufs.clear();
  scratch.frame_index.clear();
  return pushed;
}

std::size_t SimNic::rx_burst(std::uint16_t queue, std::span<MbufPtr> out) {
  return queues_[queue]->pop_burst(out.data(), out.size());
}

std::size_t SimNic::queue_occupancy(std::uint16_t queue) const {
  return queues_[queue]->size();
}

}  // namespace ruru
