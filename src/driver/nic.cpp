#include "driver/nic.hpp"

#include "net/packet_view.hpp"
#include "util/byte_order.hpp"

namespace ruru {

SimNic::SimNic(const NicConfig& config, Mempool& pool) : config_(config), pool_(pool) {
  queues_.reserve(config_.num_queues);
  for (std::uint16_t q = 0; q < config_.num_queues; ++q) {
    queues_.push_back(std::make_unique<SpscRing<MbufPtr>>(config_.queue_depth));
  }
}

std::uint32_t SimNic::hash_frame(std::span<const std::uint8_t> frame) const {
  // Fast fixed-offset extraction, the way NIC RSS engines parse: only
  // plain TCP/IPv4 and TCP/IPv6 get 4-tuple hashes; everything else
  // hashes to 0 (queue 0), which is what many NICs do for non-IP.
  if (frame.size() < 14) return 0;
  const std::uint16_t ether_type = load_be16(&frame[12]);
  if (ether_type == kEtherTypeIpv4) {
    if (frame.size() < 14 + 20) return 0;
    const std::uint8_t ihl = frame[14] & 0x0f;
    const std::size_t l4 = 14 + std::size_t{ihl} * 4;
    if (frame[14 + 9] != kIpProtoTcp || frame.size() < l4 + 4) return 0;
    const Ipv4Address src(load_be32(&frame[14 + 12]));
    const Ipv4Address dst(load_be32(&frame[14 + 16]));
    const std::uint16_t sp = load_be16(&frame[l4]);
    const std::uint16_t dp = load_be16(&frame[l4 + 2]);
    return rss_hash_tcp4(config_.rss_key, src, dst, sp, dp);
  }
  if (ether_type == kEtherTypeIpv6) {
    if (frame.size() < 14 + 40 + 4) return 0;
    if (frame[14 + 6] != kIpProtoTcp) return 0;
    std::array<std::uint8_t, 16> s{};
    std::array<std::uint8_t, 16> d{};
    std::copy_n(&frame[14 + 8], 16, s.begin());
    std::copy_n(&frame[14 + 24], 16, d.begin());
    const std::size_t l4 = 14 + 40;
    return rss_hash_tcp6(config_.rss_key, Ipv6Address(s), Ipv6Address(d),
                         load_be16(&frame[l4]), load_be16(&frame[l4 + 2]));
  }
  return 0;
}

bool SimNic::inject(std::span<const std::uint8_t> frame, Timestamp rx_time) {
  MbufPtr mbuf = pool_.alloc();
  if (!mbuf) {
    ++stats_.dropped_no_mbuf;
    return false;
  }
  if (!mbuf->assign(frame)) {
    ++stats_.dropped_oversize;
    return false;
  }
  mbuf->timestamp = rx_time;
  mbuf->rss_hash = hash_frame(frame);
  mbuf->port_id = config_.port_id;
  const std::uint16_t queue = static_cast<std::uint16_t>(mbuf->rss_hash % config_.num_queues);
  mbuf->queue_id = queue;
  if (!queues_[queue]->try_push(std::move(mbuf))) {
    ++stats_.dropped_queue_full;
    return false;
  }
  ++stats_.rx_packets;
  stats_.rx_bytes += frame.size();
  return true;
}

std::size_t SimNic::rx_burst(std::uint16_t queue, std::span<MbufPtr> out) {
  return queues_[queue]->pop_burst(out.data(), out.size());
}

std::size_t SimNic::queue_occupancy(std::uint16_t queue) const {
  return queues_[queue]->size();
}

}  // namespace ruru
