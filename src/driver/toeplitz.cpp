#include "driver/toeplitz.hpp"

#include <cassert>

#include "util/byte_order.hpp"

namespace ruru {

const RssKey& default_rss_key() {
  // Microsoft's documented default RSS key.
  static const RssKey key = {0x6d, 0x5a, 0x56, 0xda, 0x25, 0x5b, 0x0e, 0xc2, 0x41, 0x67,
                             0x25, 0x3d, 0x43, 0xa3, 0x8f, 0xb0, 0xd0, 0xca, 0x2b, 0xcb,
                             0xae, 0x7b, 0x30, 0xb4, 0x77, 0xcb, 0x2d, 0xa3, 0x80, 0x30,
                             0xf2, 0x0c, 0x6a, 0x42, 0xb7, 0x3b, 0xbe, 0xac, 0x01, 0xfa};
  return key;
}

const RssKey& symmetric_rss_key() {
  static const RssKey key = [] {
    RssKey k{};
    for (std::size_t i = 0; i < k.size(); i += 2) {
      k[i] = 0x6d;
      k[i + 1] = 0x5a;
    }
    return k;
  }();
  return key;
}

std::uint32_t toeplitz_hash(const RssKey& key, std::span<const std::uint8_t> input) {
  // 40-byte key = 320 bits; max input 36 bytes = 288 bits, and the
  // window consumes 32 + 288 = 320 key bits: exactly the key length.
  assert(input.size() <= 36);
  std::uint32_t result = 0;
  std::uint32_t window = load_be32(key.data());  // key bits [0,32)
  std::size_t key_bit = 32;                      // next key bit to shift in
  for (const std::uint8_t byte : input) {
    for (int bit = 7; bit >= 0; --bit) {
      if ((byte >> bit) & 1) result ^= window;
      const std::uint8_t incoming = (key[key_bit / 8] >> (7 - (key_bit % 8))) & 1;
      window = (window << 1) | incoming;
      ++key_bit;
    }
  }
  return result;
}

std::uint32_t rss_hash_tcp4(const RssKey& key, Ipv4Address src, Ipv4Address dst,
                            std::uint16_t src_port, std::uint16_t dst_port) {
  std::uint8_t input[12];
  store_be32(&input[0], src.value());
  store_be32(&input[4], dst.value());
  store_be16(&input[8], src_port);
  store_be16(&input[10], dst_port);
  return toeplitz_hash(key, std::span<const std::uint8_t>(input, 12));
}

std::uint32_t rss_hash_tcp6(const RssKey& key, const Ipv6Address& src, const Ipv6Address& dst,
                            std::uint16_t src_port, std::uint16_t dst_port) {
  std::uint8_t input[36];
  std::copy(src.bytes().begin(), src.bytes().end(), &input[0]);
  std::copy(dst.bytes().begin(), dst.bytes().end(), &input[16]);
  store_be16(&input[32], src_port);
  store_be16(&input[34], dst_port);
  return toeplitz_hash(key, std::span<const std::uint8_t>(input, 36));
}

std::uint32_t rss_hash(const RssKey& key, const FiveTuple& tuple) {
  if (tuple.src.is_v4()) {
    return rss_hash_tcp4(key, tuple.src.v4, tuple.dst.v4, tuple.src_port, tuple.dst_port);
  }
  return rss_hash_tcp6(key, tuple.src.v6, tuple.dst.v6, tuple.src_port, tuple.dst_port);
}

ToeplitzTable::ToeplitzTable(const RssKey& key) {
  // window(j) = key bits [j, j+32) msb-first — what the scalar loop's
  // `window` register holds when it consumes the input bit at global
  // position j.  j <= 287, so byte index j/8+4 <= 39 stays in the key.
  const auto window = [&key](std::size_t j) -> std::uint32_t {
    const std::size_t byte = j / 8;
    const unsigned shift = static_cast<unsigned>(j % 8);
    std::uint32_t w = load_be32(&key[byte]);
    if (shift != 0) {
      w = (w << shift) | (std::uint32_t{key[byte + 4]} >> (8 - shift));
    }
    return w;
  };
  for (std::size_t i = 0; i < kMaxRssInput; ++i) {
    // Windows consumed by the 8 bits of input byte i, msb-first.
    std::uint32_t bit_window[8];
    for (std::size_t k = 0; k < 8; ++k) bit_window[k] = window(i * 8 + k);
    for (std::size_t b = 0; b < 256; ++b) {
      std::uint32_t acc = 0;
      for (std::size_t k = 0; k < 8; ++k) {
        if ((b >> (7 - k)) & 1) acc ^= bit_window[k];
      }
      table_[i][b] = acc;
    }
  }
}

std::uint32_t ToeplitzTable::hash_tcp4(Ipv4Address src, Ipv4Address dst, std::uint16_t src_port,
                                       std::uint16_t dst_port) const {
  std::uint8_t input[12];
  store_be32(&input[0], src.value());
  store_be32(&input[4], dst.value());
  store_be16(&input[8], src_port);
  store_be16(&input[10], dst_port);
  return hash(std::span<const std::uint8_t>(input, 12));
}

std::uint32_t ToeplitzTable::hash_tcp6(const Ipv6Address& src, const Ipv6Address& dst,
                                       std::uint16_t src_port, std::uint16_t dst_port) const {
  std::uint8_t input[36];
  std::copy(src.bytes().begin(), src.bytes().end(), &input[0]);
  std::copy(dst.bytes().begin(), dst.bytes().end(), &input[16]);
  store_be16(&input[32], src_port);
  store_be16(&input[34], dst_port);
  return hash(std::span<const std::uint8_t>(input, 36));
}

std::uint32_t ToeplitzTable::hash(const FiveTuple& tuple) const {
  if (tuple.src.is_v4()) {
    return hash_tcp4(tuple.src.v4, tuple.dst.v4, tuple.src_port, tuple.dst_port);
  }
  return hash_tcp6(tuple.src.v6, tuple.dst.v6, tuple.src_port, tuple.dst_port);
}

}  // namespace ruru
