#pragma once
// Packet buffer (mbuf) — the simdpdk analogue of rte_mbuf.
//
// Fixed-size buffers owned by a Mempool; RX metadata (timestamp, RSS
// hash, queue) rides alongside the bytes exactly as DPDK offloads would
// provide it.  Ownership is expressed with a unique_ptr whose deleter
// returns the buffer to its pool — buffers are never heap-allocated on
// the data path.

#include <cassert>
#include <cstdint>
#include <cstring>
#include <memory>
#include <span>

#include "util/time.hpp"

namespace ruru {

class Mempool;

class Mbuf {
 public:
  /// Usable bytes in the buffer (default mirrors a 2KB DPDK dataroom).
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::size_t length() const { return length_; }

  [[nodiscard]] std::uint8_t* data() { return storage_; }
  [[nodiscard]] const std::uint8_t* data() const { return storage_; }
  [[nodiscard]] std::span<const std::uint8_t> bytes() const { return {storage_, length_}; }

  /// Copies `frame` into the buffer. Returns false when it does not fit
  /// (caller counts an oversize drop).
  bool assign(std::span<const std::uint8_t> frame) {
    if (frame.size() > capacity_) return false;
    std::memcpy(storage_, frame.data(), frame.size());
    length_ = frame.size();
    return true;
  }

  // --- RX descriptor metadata (filled by the NIC) ---
  Timestamp timestamp{};     ///< hardware-style RX timestamp
  std::uint32_t rss_hash = 0;
  std::uint16_t queue_id = 0;
  std::uint16_t port_id = 0;
  /// Flight-recorder sampling: non-zero when this packet's flow is
  /// 1-in-N traced (obs::trace_id_for of the RSS hash).  The NIC
  /// writes trace_id on every packet while sampling is enabled (so
  /// recycled mbufs never carry a stale id) and stamps ingest_ns only
  /// for selected packets; with sampling off neither field is touched.
  std::uint32_t trace_id = 0;
  std::int64_t ingest_ns = 0;  ///< TSC-clock stamp at NIC ingest (traced only)

 private:
  friend class Mempool;
  Mbuf(std::uint8_t* storage, std::size_t capacity) : storage_(storage), capacity_(capacity) {}

  std::uint8_t* storage_;
  std::size_t capacity_;
  std::size_t length_ = 0;
  Mempool* pool_ = nullptr;

  friend struct MbufDeleter;
};

struct MbufDeleter {
  void operator()(Mbuf* m) const;
};

/// Owning handle; destruction returns the buffer to its mempool.
using MbufPtr = std::unique_ptr<Mbuf, MbufDeleter>;

}  // namespace ruru
