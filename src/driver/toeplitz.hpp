#pragma once
// Toeplitz RSS hashing with symmetric-key support.
//
// Ruru configures *symmetric* RSS so both directions of a TCP connection
// land on the same RX queue (the SYN travels client->server while the
// SYN-ACK travels server->client, and both must hit the same flow table).
// The classic trick (Woo & Park, "Scalable TCP Session Monitoring with
// Symmetric RSS") is a 40-byte key made of one repeated 16-bit pattern —
// then Toeplitz(src,dst) == Toeplitz(dst,src).

#include <array>
#include <cstdint>
#include <span>

#include "net/five_tuple.hpp"

namespace ruru {

using RssKey = std::array<std::uint8_t, 40>;

/// Microsoft's default RSS key (asymmetric; for the ablation bench).
[[nodiscard]] const RssKey& default_rss_key();

/// Symmetric key: 0x6d5a repeated 20 times.
[[nodiscard]] const RssKey& symmetric_rss_key();

/// Generic Toeplitz hash over `input` using `key`. `input` must be at
/// most 36 bytes (the largest standard RSS input, IPv6 4-tuple).
[[nodiscard]] std::uint32_t toeplitz_hash(const RssKey& key,
                                          std::span<const std::uint8_t> input);

/// RSS over the IPv4 4-tuple (src ip, dst ip, src port, dst port), the
/// NIC's "TCP/IPv4" input vector.
[[nodiscard]] std::uint32_t rss_hash_tcp4(const RssKey& key, Ipv4Address src, Ipv4Address dst,
                                          std::uint16_t src_port, std::uint16_t dst_port);

/// RSS over the IPv6 4-tuple.
[[nodiscard]] std::uint32_t rss_hash_tcp6(const RssKey& key, const Ipv6Address& src,
                                          const Ipv6Address& dst, std::uint16_t src_port,
                                          std::uint16_t dst_port);

/// RSS for a parsed tuple (dispatch by family).
[[nodiscard]] std::uint32_t rss_hash(const RssKey& key, const FiveTuple& tuple);

}  // namespace ruru
