#pragma once
// Toeplitz RSS hashing with symmetric-key support.
//
// Ruru configures *symmetric* RSS so both directions of a TCP connection
// land on the same RX queue (the SYN travels client->server while the
// SYN-ACK travels server->client, and both must hit the same flow table).
// The classic trick (Woo & Park, "Scalable TCP Session Monitoring with
// Symmetric RSS") is a 40-byte key made of one repeated 16-bit pattern —
// then Toeplitz(src,dst) == Toeplitz(dst,src).

#include <array>
#include <cstdint>
#include <span>

#include "net/five_tuple.hpp"

namespace ruru {

using RssKey = std::array<std::uint8_t, 40>;

/// Microsoft's default RSS key (asymmetric; for the ablation bench).
[[nodiscard]] const RssKey& default_rss_key();

/// Symmetric key: 0x6d5a repeated 20 times.
[[nodiscard]] const RssKey& symmetric_rss_key();

/// Generic Toeplitz hash over `input` using `key`. `input` must be at
/// most 36 bytes (the largest standard RSS input, IPv6 4-tuple).
[[nodiscard]] std::uint32_t toeplitz_hash(const RssKey& key,
                                          std::span<const std::uint8_t> input);

/// RSS over the IPv4 4-tuple (src ip, dst ip, src port, dst port), the
/// NIC's "TCP/IPv4" input vector.
[[nodiscard]] std::uint32_t rss_hash_tcp4(const RssKey& key, Ipv4Address src, Ipv4Address dst,
                                          std::uint16_t src_port, std::uint16_t dst_port);

/// RSS over the IPv6 4-tuple.
[[nodiscard]] std::uint32_t rss_hash_tcp6(const RssKey& key, const Ipv6Address& src,
                                          const Ipv6Address& dst, std::uint16_t src_port,
                                          std::uint16_t dst_port);

/// RSS for a parsed tuple (dispatch by family).
[[nodiscard]] std::uint32_t rss_hash(const RssKey& key, const FiveTuple& tuple);

/// Largest standard RSS input: the IPv6 4-tuple (16+16+2+2 bytes).
inline constexpr std::size_t kMaxRssInput = 36;

/// Table-driven Toeplitz hasher (the rte_thash trick): one 256-entry
/// XOR table per input byte position, derived once from the key.  The
/// hash of an n-byte input is then n table lookups XORed together — 12
/// for TCP/IPv4, 36 for TCP/IPv6 — instead of the scalar
/// implementation's bit-by-bit walk (8 shifts + conditional XORs per
/// byte).  Bit-exact with toeplitz_hash(), which stays as the reference
/// oracle; in particular it inherits the symmetry property of
/// symmetric_rss_key().
class ToeplitzTable {
 public:
  explicit ToeplitzTable(const RssKey& key);

  /// Table-driven equivalent of toeplitz_hash(key, input).
  [[nodiscard]] std::uint32_t hash(std::span<const std::uint8_t> input) const {
    std::uint32_t result = 0;
    for (std::size_t i = 0; i < input.size(); ++i) result ^= table_[i][input[i]];
    return result;
  }

  /// Table-driven equivalent of rss_hash_tcp4 (12 XORs).
  [[nodiscard]] std::uint32_t hash_tcp4(Ipv4Address src, Ipv4Address dst,
                                        std::uint16_t src_port, std::uint16_t dst_port) const;

  /// Table-driven equivalent of rss_hash_tcp6 (36 XORs).
  [[nodiscard]] std::uint32_t hash_tcp6(const Ipv6Address& src, const Ipv6Address& dst,
                                        std::uint16_t src_port, std::uint16_t dst_port) const;

  /// Table-driven equivalent of rss_hash (dispatch by family).
  [[nodiscard]] std::uint32_t hash(const FiveTuple& tuple) const;

 private:
  /// table_[i][b] = Toeplitz contribution of input byte value `b` at
  /// byte position `i` (the XOR of the key's 32-bit windows at the bit
  /// positions where `b` has ones).
  std::array<std::array<std::uint32_t, 256>, kMaxRssInput> table_;
};

}  // namespace ruru
