#include "driver/eal.hpp"

namespace ruru {

std::uint32_t LcoreLauncher::launch(LcoreMain main) {
  const auto id = static_cast<std::uint32_t>(threads_.size());
  threads_.emplace_back(
      [this, id, main = std::move(main)] { main(id, stop_); });
  return id;
}

void LcoreLauncher::stop_and_join() {
  stop_.store(true, std::memory_order_release);
  for (auto& t : threads_) {
    if (t.joinable()) t.join();
  }
  threads_.clear();
  stop_.store(false, std::memory_order_release);
}

}  // namespace ruru
