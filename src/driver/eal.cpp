#include "driver/eal.hpp"

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

#include "util/logging.hpp"

namespace ruru {

bool LcoreLauncher::pin_self(int cpu) {
  if (cpu < 0) return false;
#if defined(__linux__)
  if (cpu >= CPU_SETSIZE) return false;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(cpu, &set);
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
#else
  return false;  // affinity unsupported on this platform; run unpinned
#endif
}

std::uint32_t LcoreLauncher::launch(LcoreMain main, int pin_cpu) {
  const auto id = static_cast<std::uint32_t>(threads_.size());
  threads_.emplace_back([this, id, pin_cpu, main = std::move(main)] {
    if (pin_cpu != kNoCpuPin) {
      if (pin_self(pin_cpu)) {
        pinned_.fetch_add(1, std::memory_order_acq_rel);
      } else {
        pin_failures_.fetch_add(1, std::memory_order_acq_rel);
        RURU_LOG(kWarn, "driver") << "lcore " << id << ": could not pin to CPU " << pin_cpu
                                  << ", running unpinned";
      }
    }
    main(id, stop_);
  });
  return id;
}

void LcoreLauncher::stop_and_join() {
  stop_.store(true, std::memory_order_release);
  for (auto& t : threads_) {
    if (t.joinable()) t.join();
  }
  threads_.clear();
  stop_.store(false, std::memory_order_release);
}

}  // namespace ruru
