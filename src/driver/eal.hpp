#pragma once
// Lcore launcher — the simdpdk analogue of rte_eal_remote_launch.
//
// Each "lcore" is a std::thread running a user poll loop until stop() is
// requested.  The launcher owns thread lifetime; destruction joins.

#include <atomic>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

namespace ruru {

class LcoreLauncher {
 public:
  /// The loop body: called with (lcore_id, stop_flag). The body is
  /// expected to poll until the flag becomes true.
  using LcoreMain = std::function<void(std::uint32_t lcore_id, const std::atomic<bool>& stop)>;

  LcoreLauncher() = default;
  ~LcoreLauncher() { stop_and_join(); }

  LcoreLauncher(const LcoreLauncher&) = delete;
  LcoreLauncher& operator=(const LcoreLauncher&) = delete;

  /// Launch `main` on a new lcore; returns its id.
  std::uint32_t launch(LcoreMain main);

  /// Signal all lcores to stop and join them. Idempotent.
  void stop_and_join();

  [[nodiscard]] std::size_t lcore_count() const { return threads_.size(); }

 private:
  std::atomic<bool> stop_{false};
  std::vector<std::thread> threads_;
};

}  // namespace ruru
