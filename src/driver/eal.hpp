#pragma once
// Lcore launcher — the simdpdk analogue of rte_eal_remote_launch.
//
// Each "lcore" is a std::thread running a user poll loop until stop() is
// requested.  The launcher owns thread lifetime; destruction joins.
// Like DPDK's EAL coremask, a launch may carry a CPU affinity: the
// thread is pinned to that core before the loop body runs, so a worker's
// flow table and accumulators stay on one core's cache for the life of
// the run.  Pinning is best-effort — on hosts with fewer cores than the
// topology asks for (CI containers), the failure is counted and the
// thread runs unpinned rather than aborting the pipeline.

#include <atomic>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

namespace ruru {

/// No CPU affinity requested for a launch.
inline constexpr int kNoCpuPin = -1;

class LcoreLauncher {
 public:
  /// The loop body: called with (lcore_id, stop_flag). The body is
  /// expected to poll until the flag becomes true.
  using LcoreMain = std::function<void(std::uint32_t lcore_id, const std::atomic<bool>& stop)>;

  LcoreLauncher() = default;
  ~LcoreLauncher() { stop_and_join(); }

  LcoreLauncher(const LcoreLauncher&) = delete;
  LcoreLauncher& operator=(const LcoreLauncher&) = delete;

  /// Launch `main` on a new lcore; returns its id.  `pin_cpu` >= 0 pins
  /// the thread to that CPU before `main` runs (best-effort: a failed
  /// pin is counted in pin_failures() and the thread runs unpinned).
  std::uint32_t launch(LcoreMain main, int pin_cpu = kNoCpuPin);

  /// Signal all lcores to stop and join them. Idempotent.
  void stop_and_join();

  [[nodiscard]] std::size_t lcore_count() const { return threads_.size(); }
  /// Lcores whose affinity was applied successfully.
  [[nodiscard]] std::size_t pinned() const {
    return pinned_.load(std::memory_order_acquire);
  }
  /// Requested pins that could not be applied (bad CPU id, host too
  /// small, unsupported platform).
  [[nodiscard]] std::size_t pin_failures() const {
    return pin_failures_.load(std::memory_order_acquire);
  }

  /// Pin the *calling* thread to `cpu`. Exposed so producer lanes (which
  /// are not launcher threads) can join the pinned topology. Returns
  /// false when the pin could not be applied.
  static bool pin_self(int cpu);

 private:
  std::atomic<bool> stop_{false};
  std::atomic<std::size_t> pinned_{0};
  std::atomic<std::size_t> pin_failures_{0};
  std::vector<std::thread> threads_;
};

}  // namespace ruru
