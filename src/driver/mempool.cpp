#include "driver/mempool.hpp"

namespace ruru {

void MbufDeleter::operator()(Mbuf* m) const {
  if (m != nullptr && m->pool_ != nullptr) m->pool_->release(m);
}

Mempool::Mempool(std::size_t count, std::size_t buf_size)
    : count_(count), storage_(count * buf_size) {
  mbufs_.reserve(count);
  free_list_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    mbufs_.push_back(Mbuf(&storage_[i * buf_size], buf_size));
    mbufs_.back().pool_ = this;
  }
  // Push in reverse so the first alloc returns the first buffer.
  for (std::size_t i = count; i > 0; --i) free_list_.push_back(&mbufs_[i - 1]);
}

Mempool::~Mempool() = default;

MbufPtr Mempool::alloc() {
  std::lock_guard lock(mu_);
  if (free_list_.empty()) {
    ++alloc_failures_;
    return nullptr;
  }
  Mbuf* m = free_list_.back();
  free_list_.pop_back();
  // Reset per-packet state.
  m->length_ = 0;
  m->timestamp = Timestamp{};
  m->rss_hash = 0;
  m->queue_id = 0;
  m->port_id = 0;
  return MbufPtr(m);
}

std::size_t Mempool::alloc_bulk(std::span<MbufPtr> out) {
  std::lock_guard lock(mu_);
  const std::size_t n = out.size() < free_list_.size() ? out.size() : free_list_.size();
  for (std::size_t i = 0; i < n; ++i) {
    Mbuf* m = free_list_.back();
    free_list_.pop_back();
    m->length_ = 0;
    m->timestamp = Timestamp{};
    m->rss_hash = 0;
    m->queue_id = 0;
    m->port_id = 0;
    out[i] = MbufPtr(m);
  }
  alloc_failures_ += out.size() - n;
  return n;
}

void Mempool::release(Mbuf* m) {
  std::lock_guard lock(mu_);
  free_list_.push_back(m);
}

std::size_t Mempool::available() const {
  std::lock_guard lock(mu_);
  return free_list_.size();
}

std::uint64_t Mempool::alloc_failures() const {
  std::lock_guard lock(mu_);
  return alloc_failures_;
}

}  // namespace ruru
