#pragma once
// Bounded lock-free MPMC ring — the simdpdk analogue of rte_ring's
// multi-producer/multi-consumer mode (Vyukov's bounded MPMC queue).
//
// Each slot carries a sequence number; producers claim a ticket with a
// CAS on the enqueue cursor and publish by bumping the slot sequence,
// consumers mirror it.  No locks, no spurious blocking; full/empty are
// detected exactly.  Used where multiple threads feed one queue (e.g.
// several capture ports fanning into one worker) — the single-producer
// RX fast path keeps using SpscRing.

#include <atomic>
#include <cstddef>
#include <optional>
#include <vector>

#include "util/spsc_ring.hpp"  // kCacheLine

namespace ruru {

template <typename T>
class MpmcRing {
 public:
  /// Capacity rounds up to a power of two.
  explicit MpmcRing(std::size_t capacity) {
    std::size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    mask_ = cap - 1;
    slots_ = std::vector<Slot>(cap);
    for (std::size_t i = 0; i < cap; ++i) {
      slots_[i].sequence.store(i, std::memory_order_relaxed);
    }
  }

  MpmcRing(const MpmcRing&) = delete;
  MpmcRing& operator=(const MpmcRing&) = delete;

  [[nodiscard]] std::size_t capacity() const { return mask_ + 1; }

  /// Approximate size (exact when quiescent).
  [[nodiscard]] std::size_t size() const {
    const std::size_t head = enqueue_.load(std::memory_order_acquire);
    const std::size_t tail = dequeue_.load(std::memory_order_acquire);
    return head >= tail ? head - tail : 0;
  }

  [[nodiscard]] bool try_push(T value) { return try_push_from(value); }

  /// Like try_push, but moves from `value` only when a slot was claimed,
  /// so a caller can retry the same object after a full ring (needed by
  /// blocking wrappers that back off and try again).
  [[nodiscard]] bool try_push_from(T& value) {
    std::size_t pos = enqueue_.load(std::memory_order_relaxed);
    while (true) {
      Slot& slot = slots_[pos & mask_];
      const std::size_t seq = slot.sequence.load(std::memory_order_acquire);
      const auto diff = static_cast<std::intptr_t>(seq) - static_cast<std::intptr_t>(pos);
      if (diff == 0) {
        if (enqueue_.compare_exchange_weak(pos, pos + 1, std::memory_order_relaxed)) {
          slot.value = std::move(value);
          slot.sequence.store(pos + 1, std::memory_order_release);
          return true;
        }
        // CAS failed: pos reloaded, retry.
      } else if (diff < 0) {
        return false;  // full
      } else {
        pos = enqueue_.load(std::memory_order_relaxed);
      }
    }
  }

  [[nodiscard]] std::optional<T> try_pop() {
    std::size_t pos = dequeue_.load(std::memory_order_relaxed);
    while (true) {
      Slot& slot = slots_[pos & mask_];
      const std::size_t seq = slot.sequence.load(std::memory_order_acquire);
      const auto diff =
          static_cast<std::intptr_t>(seq) - static_cast<std::intptr_t>(pos + 1);
      if (diff == 0) {
        if (dequeue_.compare_exchange_weak(pos, pos + 1, std::memory_order_relaxed)) {
          T value = std::move(slot.value);
          slot.sequence.store(pos + mask_ + 1, std::memory_order_release);
          return value;
        }
      } else if (diff < 0) {
        return std::nullopt;  // empty
      } else {
        pos = dequeue_.load(std::memory_order_relaxed);
      }
    }
  }

 private:
  struct Slot {
    std::atomic<std::size_t> sequence{0};
    T value{};
  };

  std::vector<Slot> slots_;
  std::size_t mask_ = 0;
  alignas(kCacheLine) std::atomic<std::size_t> enqueue_{0};
  alignas(kCacheLine) std::atomic<std::size_t> dequeue_{0};
};

}  // namespace ruru
