#pragma once
// Fixed-capacity packet buffer pool (simdpdk analogue of rte_mempool).
//
// All mbuf storage is allocated once up front; alloc/free push and pop a
// free stack under a light mutex.  Exhaustion is an expected condition
// (alloc returns null) that the NIC counts as an rx drop, matching DPDK
// semantics when a pool runs dry.

#include <cstdint>
#include <mutex>
#include <span>
#include <vector>

#include "driver/mbuf.hpp"

namespace ruru {

class Mempool {
 public:
  /// `count` buffers of `buf_size` usable bytes each.
  Mempool(std::size_t count, std::size_t buf_size = 2048);

  Mempool(const Mempool&) = delete;
  Mempool& operator=(const Mempool&) = delete;
  ~Mempool();

  /// Null when the pool is exhausted.
  [[nodiscard]] MbufPtr alloc();

  /// Bulk alloc: fills up to `out.size()` slots under ONE lock
  /// acquisition (rte_mempool_get_bulk's amortization) and returns the
  /// number filled.  Missing buffers count one alloc failure each.
  /// Producer lanes use this so sharded injection pays one mutex per
  /// burst per lane instead of one per frame.
  std::size_t alloc_bulk(std::span<MbufPtr> out);

  [[nodiscard]] std::size_t capacity() const { return count_; }
  [[nodiscard]] std::size_t available() const;
  [[nodiscard]] std::uint64_t alloc_failures() const;

 private:
  friend struct MbufDeleter;
  void release(Mbuf* m);

  const std::size_t count_;
  std::vector<std::uint8_t> storage_;           // contiguous dataroom
  std::vector<Mbuf> mbufs_;                     // descriptor array
  std::vector<Mbuf*> free_list_;
  mutable std::mutex mu_;
  std::uint64_t alloc_failures_ = 0;
};

}  // namespace ruru
