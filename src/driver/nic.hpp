#pragma once
// SimNic — a multi-queue, poll-mode NIC port (simdpdk analogue of an
// rte_ethdev in RX-only tap mode).
//
// Frames are injected by a single producer (the traffic replay); the NIC
// stamps an RX timestamp, computes the configured RSS hash over the
// TCP/IP 4-tuple, and enqueues the mbuf on queue `hash % nb_queues`.
// Worker lcores drain queues with rx_burst(), exactly like rte_eth_rx_burst.
//
// Drop accounting mirrors hardware: mempool exhaustion and full RX rings
// are counted, never blocked on — a latency tap must not apply
// backpressure to the wire.

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "driver/mempool.hpp"
#include "driver/toeplitz.hpp"
#include "util/spsc_ring.hpp"
#include "util/time.hpp"

namespace ruru {

struct NicStats {
  std::uint64_t rx_packets = 0;
  std::uint64_t rx_bytes = 0;
  std::uint64_t dropped_no_mbuf = 0;
  std::uint64_t dropped_queue_full = 0;
  std::uint64_t dropped_oversize = 0;
};

struct NicConfig {
  std::uint16_t num_queues = 4;
  std::size_t queue_depth = 4096;
  RssKey rss_key = symmetric_rss_key();
  std::uint16_t port_id = 0;
};

class SimNic {
 public:
  SimNic(const NicConfig& config, Mempool& pool);

  SimNic(const SimNic&) = delete;
  SimNic& operator=(const SimNic&) = delete;

  /// RX path: copy `frame` into an mbuf, hash, timestamp, enqueue.
  /// Single-producer: call from one thread only. Returns true when the
  /// frame was queued (false -> counted in stats as a drop).
  bool inject(std::span<const std::uint8_t> frame, Timestamp rx_time);

  /// Poll up to `out.size()` mbufs from `queue` (rte_eth_rx_burst).
  /// Safe to call concurrently across *different* queues.
  std::size_t rx_burst(std::uint16_t queue, std::span<MbufPtr> out);

  [[nodiscard]] std::uint16_t num_queues() const { return config_.num_queues; }
  [[nodiscard]] const NicStats& stats() const { return stats_; }
  [[nodiscard]] std::size_t queue_occupancy(std::uint16_t queue) const;

  /// RSS hash the NIC would assign to this frame (exposed for tests).
  [[nodiscard]] std::uint32_t hash_frame(std::span<const std::uint8_t> frame) const;

 private:
  NicConfig config_;
  Mempool& pool_;
  std::vector<std::unique_ptr<SpscRing<MbufPtr>>> queues_;
  NicStats stats_;
};

}  // namespace ruru
