#pragma once
// SimNic — a multi-queue, poll-mode NIC port (simdpdk analogue of an
// rte_ethdev in RX-only tap mode).
//
// Frames are injected by a single producer (the traffic replay); the NIC
// stamps an RX timestamp, computes the configured RSS hash over the
// TCP/IP 4-tuple, and enqueues the mbuf on queue `hash % nb_queues`.
// Worker lcores drain queues with rx_burst(), exactly like rte_eth_rx_burst.
//
// Two producer topologies are supported, mutually exclusive per run:
//  * whole-port single producer — inject()/inject_burst() from one
//    thread, distributing across all queues (the original contract);
//  * sharded lanes — one producer thread per queue calling
//    inject_shard(q, ...), each lane feeding only its own SPSC ring.
//    The replayer partitions frames by the same Toeplitz hash the NIC
//    would compute, so lane q carries exactly the frames queue q would
//    have received — per-queue streams are bit-identical to the
//    single-producer path, and no ring ever sees two producers.
// Per-lane stats shards keep the single-writer StatCell contract;
// stats_totals() merges them for reporting.
//
// Drop accounting mirrors hardware: mempool exhaustion and full RX rings
// are counted, never blocked on — a latency tap must not apply
// backpressure to the wire.

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "driver/mempool.hpp"
#include "driver/toeplitz.hpp"
#include "util/spsc_ring.hpp"
#include "util/stat_cell.hpp"
#include "util/time.hpp"

namespace ruru {

/// Single-writer cells (the injecting thread): readable live by the
/// metrics snapshot thread without tearing.
struct NicStats {
  StatCell rx_packets = 0;
  StatCell rx_bytes = 0;
  StatCell dropped_no_mbuf = 0;
  StatCell dropped_queue_full = 0;
  StatCell dropped_oversize = 0;
  /// Sharded injection only: frames handed to a lane whose RSS hash maps
  /// to a different queue (a replayer partition bug, never silent).
  StatCell dropped_misrouted = 0;
};

struct NicConfig {
  std::uint16_t num_queues = 4;
  std::size_t queue_depth = 4096;
  RssKey rss_key = symmetric_rss_key();
  std::uint16_t port_id = 0;
  /// Flight-recorder sampling rate: flows whose RSS hash selects under
  /// obs::trace_id_for(hash, trace_sample_n) get a trace id + TSC
  /// ingest stamp on their mbufs.  0 = off (no per-packet cost).
  std::uint32_t trace_sample_n = 0;
};

/// One frame of an RX burst: the wire bytes plus their capture time.
struct RxFrame {
  std::span<const std::uint8_t> data;
  Timestamp rx_time;
};

class SimNic {
 public:
  SimNic(const NicConfig& config, Mempool& pool);

  SimNic(const SimNic&) = delete;
  SimNic& operator=(const SimNic&) = delete;

  /// RX path: copy `frame` into an mbuf, hash, timestamp, enqueue.
  /// Single-producer: call from one thread only. Returns true when the
  /// frame was queued (false -> counted in stats as a drop).
  bool inject(std::span<const std::uint8_t> frame, Timestamp rx_time);

  /// Batched RX path: stage every frame's mbuf per destination queue,
  /// then publish each queue's run with ONE SpscRing::push_burst (one
  /// release store per queue per burst instead of one per frame).
  /// Same single-producer contract and drop accounting as inject().
  /// Returns the number of frames queued; when `queued` is non-null it
  /// must have `frames.size()` slots and receives a per-frame success
  /// flag (so a lossless replayer can retry exactly the failures).
  std::size_t inject_burst(std::span<const RxFrame> frames, bool* queued = nullptr);

  /// Sharded RX path: queue `queue`'s own producer lane injects a burst
  /// of frames that all hash to that queue (the replayer pre-partitions
  /// by queue_for()).  One mempool lock and one SpscRing release store
  /// per burst; a frame whose hash maps to a different queue is counted
  /// as a lane misroute and dropped (it would corrupt the symmetric-RSS
  /// guarantee that both directions of a flow share one worker).
  /// Contract: at most one producer thread per lane, and lanes must not
  /// run concurrently with whole-port inject()/inject_burst().
  /// Returns frames queued; `queued` (optional, frames.size() slots)
  /// receives per-frame success.
  std::size_t inject_shard(std::uint16_t queue, std::span<const RxFrame> frames,
                           bool* queued = nullptr);

  /// Poll up to `out.size()` mbufs from `queue` (rte_eth_rx_burst).
  /// Safe to call concurrently across *different* queues.
  std::size_t rx_burst(std::uint16_t queue, std::span<MbufPtr> out);

  [[nodiscard]] std::uint16_t num_queues() const { return config_.num_queues; }
  /// Whole-port producer shard only (inject()/inject_burst() callers).
  /// Sharded-lane traffic lands in lane_stats(); use stats_totals() for
  /// a topology-independent view.
  [[nodiscard]] const NicStats& stats() const { return stats_; }
  /// Stats shard written only by queue `queue`'s producer lane.
  [[nodiscard]] const NicStats& lane_stats(std::uint16_t queue) const {
    return lane_stats_[queue];
  }
  /// Port shard + every lane shard, merged (relaxed loads — safe from
  /// the metrics snapshot thread).
  [[nodiscard]] NicStats stats_totals() const;
  [[nodiscard]] std::size_t queue_occupancy(std::uint16_t queue) const;

  /// RSS hash the NIC would assign to this frame (exposed for tests).
  [[nodiscard]] std::uint32_t hash_frame(std::span<const std::uint8_t> frame) const;
  /// Queue the RSS hash of `frame` maps to — the replayer's partition
  /// function for sharded injection.
  [[nodiscard]] std::uint16_t queue_for(std::span<const std::uint8_t> frame) const {
    return static_cast<std::uint16_t>(hash_frame(frame) % config_.num_queues);
  }

 private:
  /// One producer lane's reusable burst scratch (mbuf staging + frame
  /// indexes), touched only by that lane's thread.
  struct LaneScratch {
    std::vector<MbufPtr> mbufs;
    std::vector<std::uint32_t> frame_index;
  };

  NicConfig config_;
  Mempool& pool_;
  ToeplitzTable rss_table_;  ///< derived from config_.rss_key once
  std::vector<std::unique_ptr<SpscRing<MbufPtr>>> queues_;
  /// Per-queue staging for inject_burst, with the originating frame
  /// index alongside each mbuf (so a partial push can report exactly
  /// which frames dropped). Reused across bursts; producer-thread only.
  std::vector<std::vector<MbufPtr>> staging_;
  std::vector<std::vector<std::uint32_t>> staged_frames_;
  NicStats stats_;
  /// Sharded-injection state, indexed by queue: one stats shard and one
  /// scratch per lane so N lanes never write one cell or one buffer.
  std::vector<NicStats> lane_stats_;
  std::vector<LaneScratch> lane_scratch_;
};

}  // namespace ruru
