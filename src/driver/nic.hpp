#pragma once
// SimNic — a multi-queue, poll-mode NIC port (simdpdk analogue of an
// rte_ethdev in RX-only tap mode).
//
// Frames are injected by a single producer (the traffic replay); the NIC
// stamps an RX timestamp, computes the configured RSS hash over the
// TCP/IP 4-tuple, and enqueues the mbuf on queue `hash % nb_queues`.
// Worker lcores drain queues with rx_burst(), exactly like rte_eth_rx_burst.
//
// Drop accounting mirrors hardware: mempool exhaustion and full RX rings
// are counted, never blocked on — a latency tap must not apply
// backpressure to the wire.

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "driver/mempool.hpp"
#include "driver/toeplitz.hpp"
#include "util/spsc_ring.hpp"
#include "util/stat_cell.hpp"
#include "util/time.hpp"

namespace ruru {

/// Single-writer cells (the injecting thread): readable live by the
/// metrics snapshot thread without tearing.
struct NicStats {
  StatCell rx_packets = 0;
  StatCell rx_bytes = 0;
  StatCell dropped_no_mbuf = 0;
  StatCell dropped_queue_full = 0;
  StatCell dropped_oversize = 0;
};

struct NicConfig {
  std::uint16_t num_queues = 4;
  std::size_t queue_depth = 4096;
  RssKey rss_key = symmetric_rss_key();
  std::uint16_t port_id = 0;
};

/// One frame of an RX burst: the wire bytes plus their capture time.
struct RxFrame {
  std::span<const std::uint8_t> data;
  Timestamp rx_time;
};

class SimNic {
 public:
  SimNic(const NicConfig& config, Mempool& pool);

  SimNic(const SimNic&) = delete;
  SimNic& operator=(const SimNic&) = delete;

  /// RX path: copy `frame` into an mbuf, hash, timestamp, enqueue.
  /// Single-producer: call from one thread only. Returns true when the
  /// frame was queued (false -> counted in stats as a drop).
  bool inject(std::span<const std::uint8_t> frame, Timestamp rx_time);

  /// Batched RX path: stage every frame's mbuf per destination queue,
  /// then publish each queue's run with ONE SpscRing::push_burst (one
  /// release store per queue per burst instead of one per frame).
  /// Same single-producer contract and drop accounting as inject().
  /// Returns the number of frames queued; when `queued` is non-null it
  /// must have `frames.size()` slots and receives a per-frame success
  /// flag (so a lossless replayer can retry exactly the failures).
  std::size_t inject_burst(std::span<const RxFrame> frames, bool* queued = nullptr);

  /// Poll up to `out.size()` mbufs from `queue` (rte_eth_rx_burst).
  /// Safe to call concurrently across *different* queues.
  std::size_t rx_burst(std::uint16_t queue, std::span<MbufPtr> out);

  [[nodiscard]] std::uint16_t num_queues() const { return config_.num_queues; }
  [[nodiscard]] const NicStats& stats() const { return stats_; }
  [[nodiscard]] std::size_t queue_occupancy(std::uint16_t queue) const;

  /// RSS hash the NIC would assign to this frame (exposed for tests).
  [[nodiscard]] std::uint32_t hash_frame(std::span<const std::uint8_t> frame) const;

 private:
  NicConfig config_;
  Mempool& pool_;
  ToeplitzTable rss_table_;  ///< derived from config_.rss_key once
  std::vector<std::unique_ptr<SpscRing<MbufPtr>>> queues_;
  /// Per-queue staging for inject_burst, with the originating frame
  /// index alongside each mbuf (so a partial push can report exactly
  /// which frames dropped). Reused across bursts; producer-thread only.
  std::vector<std::vector<MbufPtr>> staging_;
  std::vector<std::vector<std::uint32_t>> staged_frames_;
  NicStats stats_;
};

}  // namespace ruru
