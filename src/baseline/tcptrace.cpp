#include "baseline/tcptrace.hpp"

namespace ruru {

namespace {

/// seq-space "a >= b" with wraparound (RFC 1982-style serial compare).
bool seq_geq(std::uint32_t a, std::uint32_t b) {
  return static_cast<std::int32_t>(a - b) >= 0;
}

}  // namespace

void TcptraceEstimator::sweep(Timestamp now) {
  for (auto it = flows_.begin(); it != flows_.end();) {
    if (now - it->second.last_seen > config_.stale_after) {
      it = flows_.erase(it);
      ++stats_.stale_evictions;
    } else {
      ++it;
    }
  }
}

std::optional<RttSample> TcptraceEstimator::process(const PacketView& pkt, Timestamp rx_time) {
  ++stats_.packets;
  const FiveTuple tuple = pkt.tuple();
  const FlowKey key = FlowKey::from(tuple);
  FlowState& flow = flows_[key.hash()];
  flow.last_seen = rx_time;
  if (flows_.size() > stats_.peak_entries) stats_.peak_entries = flows_.size();
  if (flows_.size() > config_.max_flows) sweep(rx_time);

  const int my_dir = key.forward ? 0 : 1;
  DirState& mine = flow.dir[my_dir];
  DirState& theirs = flow.dir[1 - my_dir];

  std::optional<RttSample> sample;

  // 1. Does this packet ACK the opposite direction's outstanding segment?
  if (pkt.tcp.ack_flag() && theirs.pending && seq_geq(pkt.tcp.ack, theirs.expected_ack)) {
    if (!theirs.invalidated) {
      RttSample s;
      s.stimulus = tuple.reversed();  // the acked segment's direction
      s.rtt = rx_time - theirs.sent_at;
      s.at = rx_time;
      ++stats_.samples;
      sample = s;
    }
    theirs.pending = false;
    theirs.invalidated = false;
  }

  // 2. Does this packet start a new measurable segment?
  const std::uint32_t consumed = static_cast<std::uint32_t>(pkt.payload_length) +
                                 (pkt.tcp.syn() ? 1u : 0u) + (pkt.tcp.fin() ? 1u : 0u);
  if (consumed > 0) {
    if (mine.pending && pkt.tcp.seq == mine.seg_seq) {
      // Retransmission of the outstanding segment: Karn's rule.
      mine.invalidated = true;
      ++stats_.karn_invalidations;
    } else if (!mine.pending) {
      mine.pending = true;
      mine.invalidated = false;
      mine.seg_seq = pkt.tcp.seq;
      mine.expected_ack = pkt.tcp.seq + consumed;
      mine.sent_at = rx_time;
    }
  }

  if (pkt.tcp.rst()) flows_.erase(key.hash());
  return sample;
}

}  // namespace ruru
