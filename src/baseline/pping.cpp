#include "baseline/pping.hpp"

namespace ruru {

void PpingEstimator::sweep(Timestamp now) {
  for (auto it = table_.begin(); it != table_.end();) {
    if (now - it->second > config_.stale_after) {
      it = table_.erase(it);
      ++stats_.stale_evictions;
    } else {
      ++it;
    }
  }
}

std::optional<RttSample> PpingEstimator::process(const PacketView& pkt, Timestamp rx_time) {
  ++stats_.packets;
  const auto ts = pkt.tcp.timestamp_option();
  if (!ts) return std::nullopt;
  ++stats_.with_timestamps;

  const FiveTuple tuple = pkt.tuple();
  const FlowKey key = FlowKey::from(tuple);
  const std::uint64_t flow_hash = key.hash();

  std::optional<RttSample> sample;
  // 1. Does this packet echo a TSval we saw in the opposite direction?
  if (ts->ts_ecr != 0) {
    const Key probe{flow_hash, ts->ts_ecr, !key.forward};
    auto it = table_.find(probe);
    if (it != table_.end()) {
      RttSample s;
      // The stimulus travelled opposite to this packet, i.e. from this
      // packet's destination to its source — the measured path is
      // tap <-> this packet's source.
      s.stimulus = tuple.reversed();
      s.rtt = rx_time - it->second;
      s.at = rx_time;
      table_.erase(it);  // one sample per TSval (pping's behaviour)
      ++stats_.samples;
      sample = s;
    }
  }

  // 2. Remember this packet's TSval (first occurrence only — a
  //    retransmission must not rejuvenate the timestamp).
  const Key mine{flow_hash, ts->ts_val, key.forward};
  table_.try_emplace(mine, rx_time);
  if (table_.size() > stats_.peak_entries) stats_.peak_entries = table_.size();
  if (table_.size() > config_.max_entries) sweep(rx_time);

  return sample;
}

}  // namespace ruru
