#include "baseline/pping.hpp"

#include <algorithm>

namespace ruru {

void PpingEstimator::grow_ring(FlowRings& f, std::size_t dir) {
  std::vector<std::uint32_t>& old_vals = f.vals[dir];
  std::vector<std::int64_t>& old_times = f.times[dir];
  TsDirState& st = f.st[dir];
  const std::size_t old_n = old_vals.size();
  std::vector<std::uint32_t> grown_vals(old_n * 2, 0);
  std::vector<std::int64_t> grown_times(old_n * 2, kTsNever);
  // Oldest-first compaction: replay the old ring in write order starting
  // at the head (the oldest surviving position), so relative age — and
  // therefore future eviction order — is preserved.
  std::size_t w = 0;
  for (std::size_t i = 0; i < old_n; ++i) {
    const std::size_t idx = (st.head + i) & (old_n - 1);
    if (old_times[idx] != kTsNever) {
      grown_vals[w] = old_vals[idx];
      grown_times[w] = old_times[idx];
      ++w;
    }
  }
  st.head = static_cast<std::uint32_t>(w);
  old_vals = std::move(grown_vals);
  old_times = std::move(grown_times);
}

void PpingEstimator::sweep(Timestamp now) {
  for (auto it = flows_.begin(); it != flows_.end();) {
    FlowRings& f = it->second;
    std::size_t remaining = 0;
    for (auto& times : f.times) {
      for (std::int64_t& t : times) {
        if (t == kTsNever) continue;
        if (now - Timestamp{t} > config_.stale_after) {
          t = kTsNever;
          ++stats_.stale_evictions;
          --live_;
        } else {
          ++remaining;
        }
      }
    }
    if (remaining == 0 && now - f.last_seen > config_.stale_after) {
      it = flows_.erase(it);
    } else {
      ++it;
    }
  }
}

std::optional<RttSample> PpingEstimator::process(const PacketView& pkt, Timestamp rx_time) {
  ++stats_.packets;
  const auto ts = pkt.tcp.timestamp_option();
  if (!ts) return std::nullopt;
  ++stats_.with_timestamps;

  const FiveTuple tuple = pkt.tuple();
  const FlowKey key = FlowKey::from(tuple);
  const std::size_t dir = key.forward ? 0 : 1;

  FlowRings& f = flows_[key.hash()];
  if (f.vals[0].empty()) {
    const std::size_t initial = std::min(kInitialRing, config_.ring_entries);
    for (std::size_t d = 0; d < 2; ++d) {
      f.vals[d].assign(initial, 0);
      f.times[d].assign(initial, kTsNever);
    }
  }
  f.last_seen = rx_time;

  std::optional<RttSample> sample;
  // 1. Does this packet echo a TSval we saw in the opposite direction?
  if (ts->ts_ecr != 0) {
    const std::int64_t departed = ts_match(f.ring(1 - dir), ts->ts_ecr);
    if (departed != kTsNever) {
      RttSample s;
      // The stimulus travelled opposite to this packet, i.e. from this
      // packet's destination to its source — the measured path is
      // tap <-> this packet's source.
      s.stimulus = tuple.reversed();
      s.rtt = rx_time - Timestamp{departed};
      s.at = rx_time;
      --live_;  // consumed: one sample per TSval (pping's behaviour)
      ++stats_.samples;
      sample = s;
    }
  }

  // 2. Remember this packet's TSval (first occurrence only — a
  //    retransmission must not rejuvenate the timestamp).
  const bool eliciting = pkt.payload_length > 0 || pkt.tcp.syn() || pkt.tcp.fin();
  if (!config_.eliciting_only || eliciting) {
    TsDirState& st = f.st[dir];
    // Grow instead of evicting while the cap allows it: the write
    // position holding a live note is exactly the fixed ring's eviction
    // condition.
    if (f.vals[dir].size() < config_.ring_entries &&
        f.times[dir][st.head & (f.vals[dir].size() - 1)] != kTsNever) {
      grow_ring(f, dir);
    }
    const TsNoteResult r = ts_note(f.ring(dir), st, ts->ts_val, rx_time.ns);
    if (r.noted && !r.evicted) ++live_;
    if (r.evicted) ++stats_.ring_evictions;
    if (r.wrapped) ++stats_.ts_wraps;
  }

  stats_.peak_entries = std::max(stats_.peak_entries, live_);
  if (live_ > config_.max_entries) sweep(rx_time);

  return sample;
}

}  // namespace ruru
