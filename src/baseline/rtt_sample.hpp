#pragma once
// RTT samples produced by the comparator estimators (pping / tcptrace
// style).
//
// A passive estimator at a tap matches a *stimulus* packet with the
// *response* that acknowledges/echoes it; the gap covers the path
// tap -> stimulus-destination -> tap.  Whether that is Ruru's "internal"
// or "external" half depends on which side of the tap the destination
// sits — the estimator cannot know, so the sample records the stimulus
// tuple and the consumer classifies by address (benches use the
// scenario's address plan).

#include "net/five_tuple.hpp"
#include "util/time.hpp"

namespace ruru {

struct RttSample {
  FiveTuple stimulus;  ///< the matched packet's tuple; RTT covers tap <-> stimulus.dst
  Duration rtt;
  Timestamp at;        ///< when the response passed the tap
};

}  // namespace ruru
