#pragma once
// tcptrace-style passive RTT estimator (sequence/ACK matching).
//
// Per flow direction, remember one outstanding data (or SYN/FIN)
// segment's end-sequence and send time; when the reverse direction
// acknowledges at or past it, emit a half-RTT sample.  Karn's rule:
// a retransmission of the outstanding segment invalidates the pending
// measurement (the eventual ACK is ambiguous).  Keeps O(flows) state —
// between Ruru's 3-timestamps-per-flow and pping's per-packet table.

#include <cstdint>
#include <optional>
#include <unordered_map>

#include "baseline/rtt_sample.hpp"
#include "net/packet_view.hpp"

namespace ruru {

struct TcptraceConfig {
  std::size_t max_flows = 1 << 18;
  Duration stale_after = Duration::from_sec(30.0);
};

struct TcptraceStats {
  std::uint64_t packets = 0;
  std::uint64_t samples = 0;
  std::uint64_t karn_invalidations = 0;
  std::uint64_t stale_evictions = 0;
  std::size_t peak_entries = 0;
};

class TcptraceEstimator {
 public:
  explicit TcptraceEstimator(TcptraceConfig config = {}) : config_(config) {}

  std::optional<RttSample> process(const PacketView& pkt, Timestamp rx_time);

  [[nodiscard]] const TcptraceStats& stats() const { return stats_; }
  [[nodiscard]] std::size_t entries() const { return flows_.size(); }

 private:
  struct DirState {
    bool pending = false;
    bool invalidated = false;  ///< Karn: retransmission observed
    std::uint32_t expected_ack = 0;
    std::uint32_t seg_seq = 0;  ///< for retransmission detection
    Timestamp sent_at;
  };
  struct FlowState {
    DirState dir[2];  ///< [0]=canonical-forward, [1]=reverse
    Timestamp last_seen;
  };

  void sweep(Timestamp now);

  TcptraceConfig config_;
  std::unordered_map<std::uint64_t, FlowState> flows_;  // keyed by FlowKey::hash
  TcptraceStats stats_;
};

}  // namespace ruru
