#pragma once
// pping-style passive RTT estimator (TCP timestamp echo matching).
//
// For every packet carrying an RFC 7323 timestamp option, remember the
// first time each (flow, direction, TSval) passed the tap; when a packet
// in the opposite direction echoes that TSval in TSecr, the gap is one
// half-RTT at the tap.  This yields a sample per echoed packet — far
// more samples than Ruru's one-per-handshake, at the cost of per-packet
// state.  That trade-off is exactly what bench E8 quantifies.

#include <cstdint>
#include <optional>
#include <unordered_map>

#include "baseline/rtt_sample.hpp"
#include "net/packet_view.hpp"

namespace ruru {

struct PpingConfig {
  std::size_t max_entries = 1 << 20;  ///< state cap before stale sweeps
  Duration stale_after = Duration::from_sec(10.0);
};

struct PpingStats {
  std::uint64_t packets = 0;
  std::uint64_t with_timestamps = 0;
  std::uint64_t samples = 0;
  std::uint64_t stale_evictions = 0;
  std::size_t peak_entries = 0;
};

class PpingEstimator {
 public:
  explicit PpingEstimator(PpingConfig config = {}) : config_(config) {}

  /// Feed one parsed TCP packet. Returns an RTT sample when this packet
  /// echoes a remembered TSval.
  std::optional<RttSample> process(const PacketView& pkt, Timestamp rx_time);

  [[nodiscard]] const PpingStats& stats() const { return stats_; }
  [[nodiscard]] std::size_t entries() const { return table_.size(); }

 private:
  struct Key {
    std::uint64_t flow_hash;
    std::uint32_t tsval;
    bool forward;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const noexcept {
      std::uint64_t h = k.flow_hash ^ (std::uint64_t{k.tsval} * 0x9e3779b97f4a7c15ULL);
      h ^= h >> 29;
      return static_cast<std::size_t>(h ^ (k.forward ? 0x5851f42d4c957f2dULL : 0));
    }
  };

  void sweep(Timestamp now);

  PpingConfig config_;
  std::unordered_map<Key, Timestamp, KeyHash> table_;
  PpingStats stats_;
};

}  // namespace ruru
