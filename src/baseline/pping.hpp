#pragma once
// pping-style passive RTT estimator (TCP timestamp echo matching).
//
// For every packet carrying an RFC 7323 timestamp option, remember the
// first time each (flow, direction, TSval) passed the tap; when a packet
// in the opposite direction echoes that TSval in TSecr, the gap is one
// half-RTT at the tap.  This yields a sample per echoed packet — far
// more samples than Ruru's one-per-handshake, at the cost of per-packet
// state.  That trade-off is exactly what bench E8 quantifies.
//
// The note/match/consume kernel itself lives in flow/ts_ring.hpp and is
// shared with the worker's in-flow fast path; this class wraps it in
// per-flow rings that *grow* (up to `ring_entries`) instead of starting
// fixed-size.  With `ring_entries` <= the initial size the rings are
// fixed from the first note, which makes the estimator evict in exactly
// the order of the fast path's flow-table rings — that configuration is
// the bit-exact oracle the in-flow fuzz tests replay against.

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "baseline/rtt_sample.hpp"
#include "flow/ts_ring.hpp"
#include "net/packet_view.hpp"

namespace ruru {

struct PpingConfig {
  std::size_t max_entries = 1 << 20;  ///< live-note cap before stale sweeps
  Duration stale_after = Duration::from_sec(10.0);
  /// Per-flow, per-direction ring capacity.  Rings start at
  /// min(kInitialRing, ring_entries) and double (oldest-first compaction)
  /// until they reach this cap, after which the oldest note is
  /// overwritten exactly like the fast path's fixed rings.  Must be a
  /// power of two.
  std::size_t ring_entries = 1 << 12;
  /// When true, only RTT-eliciting segments (payload, SYN, FIN) get
  /// their TSval noted — the fast-path rule.  The legacy default notes
  /// every timestamped segment (classic pping).
  bool eliciting_only = false;
};

struct PpingStats {
  std::uint64_t packets = 0;
  std::uint64_t with_timestamps = 0;
  std::uint64_t samples = 0;
  std::uint64_t stale_evictions = 0;
  std::uint64_t ring_evictions = 0;  ///< live notes overwritten at ring cap
  std::uint64_t ts_wraps = 0;        ///< TSval serial-number wraparounds
  std::size_t peak_entries = 0;
};

class PpingEstimator {
 public:
  /// Rings smaller than this start at their final size (oracle mode).
  static constexpr std::size_t kInitialRing = 8;

  explicit PpingEstimator(PpingConfig config = {}) : config_(config) {
    if (config_.ring_entries < 2) config_.ring_entries = 2;
  }

  /// Feed one parsed TCP packet. Returns an RTT sample when this packet
  /// echoes a remembered TSval.
  std::optional<RttSample> process(const PacketView& pkt, Timestamp rx_time);

  [[nodiscard]] const PpingStats& stats() const { return stats_; }
  /// Live (un-consumed, un-evicted) notes across all flows.
  [[nodiscard]] std::size_t entries() const { return live_; }

 private:
  struct FlowRings {
    /// SoA lanes per direction ([0]=forward, [1]=reverse), same layout
    /// as the flow table's embedded rings.
    std::array<std::vector<std::uint32_t>, 2> vals;
    std::array<std::vector<std::int64_t>, 2> times;
    std::array<TsDirState, 2> st{};
    Timestamp last_seen{};

    [[nodiscard]] TsRingRef ring(std::size_t dir) { return {vals[dir], times[dir]}; }
  };

  void grow_ring(FlowRings& f, std::size_t dir);
  void sweep(Timestamp now);

  PpingConfig config_;
  std::unordered_map<std::uint64_t, FlowRings> flows_;
  std::size_t live_ = 0;
  PpingStats stats_;
};

}  // namespace ruru
