#include "anomaly/robust_detector.hpp"

#include <algorithm>
#include <cmath>

namespace ruru {

namespace {

double median_of(std::vector<double> v) {
  if (v.empty()) return 0.0;
  const std::size_t mid = v.size() / 2;
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid), v.end());
  double m = v[mid];
  if (v.size() % 2 == 0) {
    const auto lower = *std::max_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid));
    m = (m + lower) / 2.0;
  }
  return m;
}

}  // namespace

RobustMadDetector::RobustMadDetector(RobustConfig config) : config_(config) {
  ring_.resize(config_.window, 0.0);
}

double RobustMadDetector::median() const {
  if (count_ == 0) return 0.0;
  return median_of(std::vector<double>(ring_.begin(),
                                       ring_.begin() + static_cast<std::ptrdiff_t>(count_)));
}

double RobustMadDetector::robust_sigma() const {
  if (count_ == 0) return config_.min_mad_ms;
  std::vector<double> window(ring_.begin(), ring_.begin() + static_cast<std::ptrdiff_t>(count_));
  const double med = median_of(window);
  for (double& v : window) v = std::abs(v - med);
  // 1.4826 scales MAD to the stddev of a normal distribution.
  const double sigma = 1.4826 * median_of(std::move(window));
  return sigma < config_.min_mad_ms ? config_.min_mad_ms : sigma;
}

std::optional<Alert> RobustMadDetector::update(Timestamp time, double value_ms) {
  if (count_ >= config_.min_samples) {
    const double med = median();
    const double sigma = robust_sigma();
    const double z = (value_ms - med) / sigma;
    if (z > config_.k) {
      Alert alert;
      alert.time = time;
      alert.kind = "latency-outlier";
      alert.score = z;
      alert.detail = "value=" + std::to_string(value_ms) + "ms median=" + std::to_string(med) +
                     "ms mad_sigma=" + std::to_string(sigma) + "ms";
      return alert;
    }
  }
  // Admit the (non-outlier) sample.
  if (count_ < ring_.size()) {
    ring_[count_++] = value_ms;
  } else {
    ring_[head_] = value_ms;
    head_ = (head_ + 1) % ring_.size();
  }
  return std::nullopt;
}

}  // namespace ruru
