#pragma once
// SYN flood detector (§3: "SYN floods can also be identified in real
// time with simple Ruru modules").
//
// Runs *before* anonymization, on the capture side of the pipeline: it
// consumes per-packet SYN events and handshake completions keyed by the
// target server, and closes fixed windows as time advances.  A window
// alerts when a target received many SYNs with a low completion ratio.

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "anomaly/alert.hpp"
#include "net/ip_address.hpp"

namespace ruru {

struct SynFloodConfig {
  Duration window = Duration::from_sec(1.0);
  std::uint64_t min_syns = 200;       ///< per window, per target
  double max_completion_ratio = 0.2;  ///< completions/syns below this = flood
};

class SynFloodDetector {
 public:
  explicit SynFloodDetector(SynFloodConfig config = {}) : config_(config) {}

  /// A SYN towards `server` observed at `time`. Thread-safe.
  void on_syn(Timestamp time, Ipv4Address server);
  /// A completed handshake towards `server`.
  void on_completion(Timestamp time, Ipv4Address server);

  /// Force-close the current window (end of run). Appends alerts found.
  void flush(std::vector<Alert>& out);

  /// Alerts raised by closed windows so far.
  [[nodiscard]] std::vector<Alert> take_alerts();

 private:
  struct Counts {
    std::uint64_t syns = 0;
    std::uint64_t completions = 0;
  };

  void roll_window_locked(Timestamp time);
  void close_window_locked();

  SynFloodConfig config_;
  std::mutex mu_;
  Timestamp window_start_{};
  bool window_open_ = false;
  std::unordered_map<Ipv4Address, Counts> counts_;
  std::vector<Alert> alerts_;
};

}  // namespace ruru
