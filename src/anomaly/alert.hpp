#pragma once
// Alerts raised by the anomaly modules (§3: latency micro-glitches,
// SYN floods, unusual connection counts).

#include <mutex>
#include <string>
#include <vector>

#include "util/time.hpp"

namespace ruru {

struct Alert {
  Timestamp time;
  std::string kind;     ///< "latency-spike", "periodic-glitch", "syn-flood", ...
  std::string subject;  ///< what it concerns ("Auckland|Los Angeles", "10.1.0.80", ...)
  double score = 0.0;   ///< detector-specific severity (z-score, ratio, ...)
  std::string detail;
};

/// Thread-safe alert collector shared by all detectors in a pipeline.
class AlertLog {
 public:
  void raise(Alert alert) {
    std::lock_guard lock(mu_);
    alerts_.push_back(std::move(alert));
  }

  [[nodiscard]] std::vector<Alert> snapshot() const {
    std::lock_guard lock(mu_);
    return alerts_;
  }

  [[nodiscard]] std::size_t count() const {
    std::lock_guard lock(mu_);
    return alerts_.size();
  }

 private:
  mutable std::mutex mu_;
  std::vector<Alert> alerts_;
};

}  // namespace ruru
