#pragma once
// JSON encoding of alerts for the bus topic "ruru.alerts" — the form
// operator tooling (chat bots, pagers, the web UI's alert panel)
// consumes.

#include <optional>

#include "anomaly/alert.hpp"
#include "msg/message.hpp"

namespace ruru {

inline constexpr std::string_view kAlertTopic = "ruru.alerts";

/// Two-frame message: [topic, JSON payload].
[[nodiscard]] Message encode_alert(const Alert& alert);

/// Parses a payload produced by encode_alert (field-order dependent —
/// intended for round-trip within one Ruru version).
[[nodiscard]] std::optional<Alert> decode_alert(const Frame& payload);

}  // namespace ruru
