#include "anomaly/periodic_detector.hpp"

#include <cstdio>

namespace ruru {

PeriodicSpikeDetector::PeriodicSpikeDetector(PeriodicConfig config) : config_(config) {
  const auto n = static_cast<std::size_t>((config_.period.ns + config_.bucket.ns - 1) /
                                          config_.bucket.ns);
  buckets_.resize(n);
}

void PeriodicSpikeDetector::add(Timestamp time, Duration latency) {
  const std::int64_t period_idx = time.ns >= 0 ? time.ns / config_.period.ns
                                               : (time.ns - config_.period.ns + 1) / config_.period.ns;
  const std::int64_t into = time.ns - period_idx * config_.period.ns;
  const auto bucket_idx = static_cast<std::size_t>(into / config_.bucket.ns);
  Bucket& b = buckets_[bucket_idx % buckets_.size()];
  b.latency.record(latency.ns);
  auto& pp = b.periods[period_idx];
  ++pp.count;
  if (latency.ns > pp.max_ns) pp.max_ns = latency.ns;
  global_.record(latency.ns);
}

std::vector<PeriodicFinding> PeriodicSpikeDetector::findings() const {
  std::vector<PeriodicFinding> out;
  if (global_.count() == 0) return out;
  const std::int64_t baseline = global_.percentile(0.5);
  const std::int64_t threshold = static_cast<std::int64_t>(
      static_cast<double>(baseline) * config_.spike_factor) + config_.spike_floor.ns;

  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    const Bucket& b = buckets_[i];
    if (b.latency.count() < config_.min_samples) continue;
    const std::int64_t bucket_median = b.latency.percentile(0.5);
    if (bucket_median < threshold) continue;
    int recurrences = 0;
    for (const auto& [period, pp] : b.periods) {
      if (pp.max_ns >= threshold) ++recurrences;
    }
    if (recurrences < config_.min_periods) continue;

    PeriodicFinding f;
    f.bucket_index = i;
    f.offset_in_period = Duration{static_cast<std::int64_t>(i) * config_.bucket.ns};
    f.bucket_median = Duration{bucket_median};
    f.baseline_median = Duration{baseline};
    f.periods_seen = recurrences;
    f.samples = b.latency.count();
    out.push_back(f);
  }
  return out;
}

std::vector<Alert> PeriodicSpikeDetector::alerts() const {
  std::vector<Alert> out;
  for (const auto& f : findings()) {
    Alert a;
    a.time = Timestamp{} + f.offset_in_period;
    a.kind = "periodic-glitch";
    a.score = f.baseline_median.ns > 0
                  ? static_cast<double>(f.bucket_median.ns) /
                        static_cast<double>(f.baseline_median.ns)
                  : 0.0;
    char buf[160];
    std::snprintf(buf, sizeof buf,
                  "recurring spike %.1fs into each period: median %s vs baseline %s "
                  "(%d periods, %llu flows)",
                  f.offset_in_period.to_sec(), to_string(f.bucket_median).c_str(),
                  to_string(f.baseline_median).c_str(), f.periods_seen,
                  static_cast<unsigned long long>(f.samples));
    a.detail = buf;
    a.subject = "offset+" + std::to_string(f.offset_in_period.ns / 1'000'000'000) + "s";
    out.push_back(std::move(a));
  }
  return out;
}

}  // namespace ruru
