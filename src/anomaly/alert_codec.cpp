#include "anomaly/alert_codec.hpp"

#include <cstdlib>

#include "util/json_writer.hpp"

namespace ruru {

Message encode_alert(const Alert& alert) {
  JsonWriter w;
  w.begin_object()
      .key("type")
      .value("alert")
      .key("t")
      .value(alert.time.to_sec())
      .key("kind")
      .value(alert.kind)
      .key("subject")
      .value(alert.subject)
      .key("score")
      .value(alert.score)
      .key("detail")
      .value(alert.detail)
      .end_object();
  Message m(kAlertTopic);
  m.add(Frame::from_string(w.str()));
  return m;
}

namespace {

/// Pulls the JSON string value following `"key":"` — sufficient for the
/// fixed documents encode_alert emits (values were escaped by
/// JsonWriter; this un-escapes the common cases).
std::optional<std::string> get_string(const std::string& doc, const std::string& key) {
  const std::string needle = "\"" + key + "\":\"";
  const auto pos = doc.find(needle);
  if (pos == std::string::npos) return std::nullopt;
  std::string out;
  for (std::size_t i = pos + needle.size(); i < doc.size(); ++i) {
    const char c = doc[i];
    if (c == '\\' && i + 1 < doc.size()) {
      const char n = doc[++i];
      switch (n) {
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        case 'r': out += '\r'; break;
        default: out += n;
      }
      continue;
    }
    if (c == '"') return out;
    out += c;
  }
  return std::nullopt;
}

std::optional<double> get_number(const std::string& doc, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const auto pos = doc.find(needle);
  if (pos == std::string::npos) return std::nullopt;
  return std::strtod(doc.c_str() + pos + needle.size(), nullptr);
}

}  // namespace

std::optional<Alert> decode_alert(const Frame& payload) {
  const std::string doc(payload.view());
  const auto kind = get_string(doc, "kind");
  const auto subject = get_string(doc, "subject");
  const auto detail = get_string(doc, "detail");
  const auto t = get_number(doc, "t");
  const auto score = get_number(doc, "score");
  if (!kind || !t) return std::nullopt;
  Alert a;
  a.time = Timestamp::from_sec(*t);
  a.kind = *kind;
  a.subject = subject.value_or("");
  a.detail = detail.value_or("");
  a.score = score.value_or(0.0);
  return a;
}

}  // namespace ruru
