#pragma once
// Periodic-glitch detector — the paper's marquee use case.
//
// A nightly firewall update added +4000 ms to every connection opened in
// one short window each night, invisible to coarse averages.  This
// detector folds time modulo a period (e.g. 24 h) into fixed-width
// buckets, keeps per-bucket robust latency stats across many periods,
// and flags buckets whose median sits far above the cross-bucket
// baseline in at least `min_periods` distinct periods — i.e. a
// *recurring* time-of-day anomaly rather than a one-off spike.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "anomaly/alert.hpp"
#include "util/histogram.hpp"

namespace ruru {

struct PeriodicConfig {
  Duration period = Duration::from_sec(86'400.0);  ///< fold length (a day)
  Duration bucket = Duration::from_sec(60.0);      ///< bucket width
  double spike_factor = 3.0;    ///< bucket median vs baseline median
  Duration spike_floor = Duration::from_ms(100);  ///< absolute excess required
  int min_periods = 2;          ///< recurrences required
  std::uint64_t min_samples = 8;
};

struct PeriodicFinding {
  std::size_t bucket_index = 0;
  Duration offset_in_period;  ///< bucket start offset
  Duration bucket_median;
  Duration baseline_median;
  int periods_seen = 0;
  std::uint64_t samples = 0;
};

class PeriodicSpikeDetector {
 public:
  explicit PeriodicSpikeDetector(PeriodicConfig config = {});

  /// Feed one (completion time, total latency) observation.
  void add(Timestamp time, Duration latency);

  /// Analyze all data seen so far.
  [[nodiscard]] std::vector<PeriodicFinding> findings() const;

  /// Convenience: findings as alerts.
  [[nodiscard]] std::vector<Alert> alerts() const;

  [[nodiscard]] std::size_t bucket_count() const { return buckets_.size(); }

 private:
  struct PerPeriod {
    std::uint64_t count = 0;
    std::int64_t max_ns = 0;
  };
  struct Bucket {
    Histogram latency;                        // ns, across all periods
    std::map<std::int64_t, PerPeriod> periods;  // period index -> stats
  };

  PeriodicConfig config_;
  std::vector<Bucket> buckets_;
  Histogram global_;  // ns, all samples
};

}  // namespace ruru
