#include "anomaly/ewma_detector.hpp"

#include <cmath>

namespace ruru {

double EwmaDetector::stddev() const {
  const double floor = config_.min_sigma_ms;
  const double s = std::sqrt(var_);
  return s < floor ? floor : s;
}

std::optional<Alert> EwmaDetector::update(Timestamp time, double value_ms) {
  if (n_ == 0) {
    mean_ = value_ms;
    var_ = 0.0;
    ++n_;
    return std::nullopt;
  }

  const double sigma = stddev();
  const double z = (value_ms - mean_) / sigma;
  const bool anomalous = n_ >= config_.warmup && z > config_.k_sigma;

  if (!anomalous) {
    const double delta = value_ms - mean_;
    mean_ += config_.alpha * delta;
    var_ = (1.0 - config_.alpha) * (var_ + config_.alpha * delta * delta);
    ++n_;
    return std::nullopt;
  }

  Alert alert;
  alert.time = time;
  alert.kind = "latency-spike";
  alert.score = z;
  alert.detail = "value=" + std::to_string(value_ms) + "ms baseline=" + std::to_string(mean_) +
                 "ms sigma=" + std::to_string(sigma) + "ms";
  return alert;
}

}  // namespace ruru
