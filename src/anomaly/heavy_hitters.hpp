#pragma once
// Space-Saving heavy-hitter tracker (Metwally et al.).
//
// "Unusual number of TCP connections between two locations" (§3) needs
// the top talkers without keeping a counter per key.  Space-Saving keeps
// a fixed number of (key, count, error) entries and guarantees every key
// whose true frequency exceeds N/capacity is present, with count
// overestimated by at most `error`.  O(log capacity) per update.
//
// Single-threaded; give each worker its own instance and merge, or feed
// it from a single consumer.

#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

namespace ruru {

template <typename K>
class SpaceSaving {
 public:
  struct Entry {
    K key;
    std::uint64_t count = 0;  ///< upper bound on the true count
    std::uint64_t error = 0;  ///< max overestimation (count - error <= true)
  };

  explicit SpaceSaving(std::size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {}

  void add(const K& key, std::uint64_t weight = 1) {
    total_ += weight;
    auto it = nodes_.find(key);
    if (it != nodes_.end()) {
      bump(it, weight);
      return;
    }
    if (nodes_.size() < capacity_) {
      auto order_it = order_.emplace(weight, key);
      nodes_.emplace(key, Node{weight, 0, order_it});
      return;
    }
    // Evict the current minimum; the newcomer inherits its count as error.
    auto min_it = order_.begin();
    const std::uint64_t min_count = min_it->first;
    nodes_.erase(min_it->second);
    order_.erase(min_it);
    auto order_new = order_.emplace(min_count + weight, key);
    nodes_.emplace(key, Node{min_count + weight, min_count, order_new});
  }

  /// Top-k entries by count, descending.
  [[nodiscard]] std::vector<Entry> top(std::size_t k) const {
    std::vector<Entry> out;
    out.reserve(std::min(k, nodes_.size()));
    for (auto it = order_.rbegin(); it != order_.rend() && out.size() < k; ++it) {
      const Node& node = nodes_.at(it->second);
      out.push_back(Entry{it->second, node.count, node.error});
    }
    return out;
  }

  /// Guaranteed-heavy entries: count - error >= threshold (no false
  /// positives above the threshold).
  [[nodiscard]] std::vector<Entry> certain_above(std::uint64_t threshold) const {
    std::vector<Entry> out;
    for (auto it = order_.rbegin(); it != order_.rend(); ++it) {
      const Node& node = nodes_.at(it->second);
      if (node.count < threshold) break;  // counts only shrink from here
      if (node.count - node.error >= threshold) {
        out.push_back(Entry{it->second, node.count, node.error});
      }
    }
    return out;
  }

  [[nodiscard]] std::size_t size() const { return nodes_.size(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::uint64_t total() const { return total_; }

 private:
  struct Node {
    std::uint64_t count;
    std::uint64_t error;
    typename std::multimap<std::uint64_t, K>::iterator order_it;
  };

  void bump(typename std::unordered_map<K, Node>::iterator it, std::uint64_t weight) {
    Node& node = it->second;
    order_.erase(node.order_it);
    node.count += weight;
    node.order_it = order_.emplace(node.count, it->first);
  }

  std::size_t capacity_;
  std::uint64_t total_ = 0;
  std::unordered_map<K, Node> nodes_;
  std::multimap<std::uint64_t, K> order_;  // count -> key (min at begin)
};

}  // namespace ruru
