#include "anomaly/conncount_detector.hpp"

#include <cmath>
#include <cstdio>

namespace ruru {

namespace {

constexpr std::uint32_t kUnlocated = 0xFFFFFFFFu;

std::uint32_t city_of(const GeoInfo& g) { return g.located ? g.city_id : kUnlocated; }

std::string pair_name(std::uint64_t key) {
  auto half = [](std::uint32_t id) {
    return id == kUnlocated ? std::string("?") : std::string(geo_names().view(id));
  };
  return half(static_cast<std::uint32_t>(key >> 32)) + "|" +
         half(static_cast<std::uint32_t>(key));
}

}  // namespace

void ConnCountDetector::add(const EnrichedSample& sample) {
  std::lock_guard lock(mu_);
  roll_window_locked(sample.completed_at);
  const std::uint64_t key =
      (std::uint64_t{city_of(sample.client)} << 32) | city_of(sample.server);
  ++window_counts_[key];
}

void ConnCountDetector::roll_window_locked(Timestamp time) {
  if (!window_open_) {
    window_start_ = Timestamp{(time.ns / config_.window.ns) * config_.window.ns};
    window_open_ = true;
    return;
  }
  while (time.ns >= window_start_.ns + config_.window.ns) {
    close_window_locked();
    window_start_ = window_start_ + config_.window;
  }
}

void ConnCountDetector::close_window_locked() {
  // Every known pair gets an observation (0 when quiet this window).
  for (auto& [key, state] : baselines_) {
    if (window_counts_.find(key) == window_counts_.end()) window_counts_[key] = 0;
  }
  for (const auto& [key, count] : window_counts_) {
    PairState& st = baselines_[key];
    const auto x = static_cast<double>(count);
    const double sigma = std::max(std::sqrt(st.var), config_.min_sigma);
    const double z = (x - st.mean) / sigma;
    const bool anomalous =
        st.windows >= config_.warmup_windows && z > config_.k_sigma && count >= config_.min_count;
    if (anomalous) {
      Alert a;
      a.time = window_start_;
      a.kind = "conn-count";
      a.subject = pair_name(key);
      a.score = z;
      char buf[128];
      std::snprintf(buf, sizeof buf, "%llu connections vs baseline %.1f (sigma %.1f)",
                    static_cast<unsigned long long>(count), st.mean, sigma);
      a.detail = buf;
      alerts_.push_back(std::move(a));
      // Do not absorb the anomaly into the baseline.
    } else {
      const double delta = x - st.mean;
      st.mean += config_.alpha * delta;
      st.var = (1.0 - config_.alpha) * (st.var + config_.alpha * delta * delta);
    }
    ++st.windows;
  }
  window_counts_.clear();
}

void ConnCountDetector::flush(std::vector<Alert>& out) {
  std::lock_guard lock(mu_);
  if (window_open_) close_window_locked();
  window_open_ = false;
  out.insert(out.end(), alerts_.begin(), alerts_.end());
  alerts_.clear();
}

std::vector<Alert> ConnCountDetector::take_alerts() {
  std::lock_guard lock(mu_);
  std::vector<Alert> out;
  out.swap(alerts_);
  return out;
}

}  // namespace ruru
