#include "anomaly/synflood_detector.hpp"

#include <cstdio>

namespace ruru {

void SynFloodDetector::roll_window_locked(Timestamp time) {
  if (!window_open_) {
    window_start_ = Timestamp{(time.ns / config_.window.ns) * config_.window.ns};
    window_open_ = true;
    return;
  }
  while (time.ns >= window_start_.ns + config_.window.ns) {
    close_window_locked();
    window_start_ = window_start_ + config_.window;
  }
}

void SynFloodDetector::close_window_locked() {
  for (const auto& [server, c] : counts_) {
    if (c.syns < config_.min_syns) continue;
    const double ratio =
        c.syns != 0 ? static_cast<double>(c.completions) / static_cast<double>(c.syns) : 0.0;
    if (ratio > config_.max_completion_ratio) continue;
    Alert a;
    a.time = window_start_;
    a.kind = "syn-flood";
    a.subject = server.to_string();
    a.score = static_cast<double>(c.syns) * (1.0 - ratio);
    char buf[128];
    std::snprintf(buf, sizeof buf, "%llu SYNs, %llu completions (ratio %.3f) in %.1fs window",
                  static_cast<unsigned long long>(c.syns),
                  static_cast<unsigned long long>(c.completions), ratio,
                  config_.window.to_sec());
    a.detail = buf;
    alerts_.push_back(std::move(a));
  }
  counts_.clear();
}

void SynFloodDetector::on_syn(Timestamp time, Ipv4Address server) {
  std::lock_guard lock(mu_);
  roll_window_locked(time);
  ++counts_[server].syns;
}

void SynFloodDetector::on_completion(Timestamp time, Ipv4Address server) {
  std::lock_guard lock(mu_);
  roll_window_locked(time);
  ++counts_[server].completions;
}

void SynFloodDetector::flush(std::vector<Alert>& out) {
  std::lock_guard lock(mu_);
  if (window_open_) close_window_locked();
  window_open_ = false;
  out.insert(out.end(), alerts_.begin(), alerts_.end());
  alerts_.clear();
}

std::vector<Alert> SynFloodDetector::take_alerts() {
  std::lock_guard lock(mu_);
  std::vector<Alert> out;
  out.swap(alerts_);
  return out;
}

}  // namespace ruru
