#pragma once
// Unusual-connection-count detector (§3: "unusual number of TCP
// connections between two locations").
//
// Counts completed handshakes per location pair in fixed windows and
// scores each window's count against an EWMA baseline per pair.  Fed
// from EnrichedSample (post-anonymization — it only needs locations).
// Pairs are keyed on packed interned city ids; the "src|dst" text is
// built only when an alert actually fires.

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "analytics/enriched_sample.hpp"
#include "anomaly/alert.hpp"

namespace ruru {

struct ConnCountConfig {
  Duration window = Duration::from_sec(10.0);
  double alpha = 0.1;         ///< EWMA smoothing for per-pair counts
  double k_sigma = 5.0;       ///< alert threshold
  double min_sigma = 2.0;     ///< variance floor (counts)
  std::uint64_t warmup_windows = 5;
  std::uint64_t min_count = 20;  ///< ignore tiny spikes
};

class ConnCountDetector {
 public:
  explicit ConnCountDetector(ConnCountConfig config = {}) : config_(config) {}

  /// Thread-safe.
  void add(const EnrichedSample& sample);

  /// Close the current window unconditionally and collect alerts.
  void flush(std::vector<Alert>& out);

  [[nodiscard]] std::vector<Alert> take_alerts();

 private:
  struct PairState {
    double mean = 0.0;
    double var = 0.0;
    std::uint64_t windows = 0;
  };

  void roll_window_locked(Timestamp time);
  void close_window_locked();

  ConnCountConfig config_;
  std::mutex mu_;
  Timestamp window_start_{};
  bool window_open_ = false;
  std::map<std::uint64_t, std::uint64_t> window_counts_;  // (src_city << 32) | dst_city
  std::map<std::uint64_t, PairState> baselines_;
  std::vector<Alert> alerts_;
};

}  // namespace ruru
