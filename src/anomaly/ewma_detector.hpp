#pragma once
// EWMA latency-change detector.
//
// Keeps exponentially weighted estimates of mean and variance and flags
// samples more than `k` estimated standard deviations above the mean —
// the "sudden latency changes" detection that 5-minute SNMP averages
// miss (§1).

#include <cstdint>
#include <optional>

#include "anomaly/alert.hpp"

namespace ruru {

struct EwmaConfig {
  double alpha = 0.02;          ///< smoothing factor
  double k_sigma = 4.0;         ///< alert threshold in stddevs
  std::uint64_t warmup = 100;   ///< samples before alerts can fire
  double min_sigma_ms = 0.5;    ///< variance floor (avoid 0-variance blowups)
};

class EwmaDetector {
 public:
  explicit EwmaDetector(EwmaConfig config = {}) : config_(config) {}

  /// Feed one latency observation (milliseconds). Returns an alert when
  /// the sample is anomalous. Anomalous samples do NOT update the
  /// baseline (they would otherwise drag it toward the anomaly).
  std::optional<Alert> update(Timestamp time, double value_ms);

  [[nodiscard]] double mean() const { return mean_; }
  [[nodiscard]] double stddev() const;
  [[nodiscard]] std::uint64_t samples() const { return n_; }

 private:
  EwmaConfig config_;
  double mean_ = 0.0;
  double var_ = 0.0;
  std::uint64_t n_ = 0;
};

}  // namespace ruru
