#pragma once
// Robust (median/MAD) outlier detector over a sliding window.
//
// EWMA is cheap but its variance estimate is inflated by the very
// outliers it should flag; the MAD detector scores against the median
// absolute deviation of the last `window` samples, which tolerates up to
// 50% contamination.  Used for the fine-grained "micro-glitch" hunting
// of §3 where a handful of +4000 ms flows hide inside normal traffic.

#include <cstddef>
#include <optional>
#include <vector>

#include "anomaly/alert.hpp"

namespace ruru {

struct RobustConfig {
  std::size_t window = 512;      ///< sliding window size
  double k = 6.0;                ///< threshold in robust z-score units
  std::size_t min_samples = 64;  ///< warmup
  double min_mad_ms = 0.25;      ///< MAD floor
};

class RobustMadDetector {
 public:
  explicit RobustMadDetector(RobustConfig config = {});

  /// Feed one latency observation (ms). Outliers are not added to the
  /// window.
  std::optional<Alert> update(Timestamp time, double value_ms);

  /// Median of the current window (0 when empty).
  [[nodiscard]] double median() const;
  /// Scaled MAD (sigma-equivalent, >= min_mad_ms once warmed).
  [[nodiscard]] double robust_sigma() const;
  [[nodiscard]] std::size_t size() const { return count_; }

 private:
  RobustConfig config_;
  std::vector<double> ring_;
  std::size_t head_ = 0;
  std::size_t count_ = 0;
};

}  // namespace ruru
