// Quickstart: measure flow-level latency on a simulated trans-Pacific
// link, exactly the paper's deployment shape.
//
//   1. build the geo/AS world (IP2Location stand-in)
//   2. construct a RuruPipeline (simdpdk NIC -> workers -> bus ->
//      analytics -> TSDB/aggregators)
//   3. replay 10 seconds of Auckland<->world traffic through it
//   4. print the Grafana-style per-route table
//
// Run: ./quickstart [flows_per_sec] [seconds]

#include <cstdio>
#include <cstdlib>

#include "core/pipeline.hpp"
#include "core/replay.hpp"
#include "example_util.hpp"

int main(int argc, char** argv) {
  using namespace ruru;

  const double flows_per_sec = argc > 1 ? std::atof(argv[1]) : 500.0;
  const double seconds = argc > 2 ? std::atof(argv[2]) : 10.0;

  const World world = examples::scenario_world();

  PipelineConfig config;
  config.num_queues = 4;
  config.enrichment_threads = 2;
  RuruPipeline pipeline(config, world.geo, world.as);
  pipeline.start();

  auto model = scenarios::transpacific(/*seed=*/2026, flows_per_sec,
                                       Duration::from_sec(seconds));
  const ReplayStats replay = replay_scenario(pipeline, model);
  pipeline.finish();

  const PipelineSummary summary = pipeline.summary();
  std::printf("Replayed %llu frames (%.1f MB) in %.2fs wall (%.2f Mpps, %.2f Gbit/s)\n",
              static_cast<unsigned long long>(replay.frames),
              static_cast<double>(replay.bytes) / 1e6, replay.wall_seconds,
              replay.frames_per_sec() / 1e6, replay.gbits_per_sec());
  std::printf("Pipeline: %s\n\n", summary.to_string().c_str());

  std::printf("%-32s %8s %9s %9s %9s %9s\n", "route (src|dst)", "conns", "min", "median",
              "mean", "max");
  for (const auto& p : pipeline.city_pairs().summaries()) {
    std::printf("%-32s %8llu %9s %9s %9s %9s\n", p.key.c_str(),
                static_cast<unsigned long long>(p.connections),
                to_string(p.min_total).c_str(), to_string(p.median_total).c_str(),
                to_string(p.mean_total).c_str(), to_string(p.max_total).c_str());
  }

  std::printf("\nTop AS pairs:\n");
  int shown = 0;
  for (const auto& p : pipeline.as_pairs().summaries()) {
    if (shown++ >= 5) break;
    std::printf("  %-24s %8llu conns, median %s\n", p.key.c_str(),
                static_cast<unsigned long long>(p.connections),
                to_string(p.median_total).c_str());
  }
  return 0;
}
