// Record-then-replay workflow: capture a simulated trans-Pacific trace
// to a pcap file (as an operator would capture at the tap), then replay
// the pcap through Ruru and compare the three estimators — Ruru's
// 3-timestamps-per-flow handshake method vs pping-style TS-option
// matching vs tcptrace-style seq/ack matching.
//
// Run: ./transpacific_replay [pcap_path] [--metrics] [--trace]
// With --metrics the pipeline runs its live telemetry layer: self-ingested
// "ruru.self.*" series land in the TSDB, each snapshot tick rewrites
// /tmp/ruru_metrics.prom (Prometheus text format) and appends one line
// to /tmp/ruru_metrics.jsonl.
// With --trace the flight recorder samples 1-in-64 flows end to end
// (nic -> worker -> flow -> bus -> enrich -> tsdb spans), arms the stall
// watchdog (SIGUSR1 dumps the flight record of a live run) and writes a
// Chrome/Perfetto trace to /tmp/ruru_trace.json on finish — load it in
// ui.perfetto.dev or chrome://tracing.

#include <cstdio>
#include <cstring>

#include "baseline/pping.hpp"
#include "baseline/tcptrace.hpp"
#include "capture/pcap.hpp"
#include "core/pipeline.hpp"
#include "core/replay.hpp"
#include "example_util.hpp"
#include "util/histogram.hpp"

int main(int argc, char** argv) {
  using namespace ruru;

  bool with_metrics = false;
  bool with_trace = false;
  std::string path = "/tmp/ruru_transpacific.pcap";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--metrics") == 0) {
      with_metrics = true;
    } else if (std::strcmp(argv[i], "--trace") == 0) {
      with_trace = true;
    } else {
      path = argv[i];
    }
  }
  const World world = examples::scenario_world();

  // --- 1. record ---
  auto model = scenarios::transpacific(/*seed=*/424242, /*flows_per_sec=*/300.0,
                                       Duration::from_sec(10.0));
  {
    auto writer = PcapWriter::open(path);
    if (!writer.ok()) {
      std::fprintf(stderr, "cannot write %s: %s\n", path.c_str(), writer.error().c_str());
      return 1;
    }
    while (auto f = model.next()) {
      if (!writer.value().write(f->timestamp, f->frame).ok()) {
        std::fprintf(stderr, "short write\n");
        return 1;
      }
    }
    std::printf("recorded %llu frames to %s\n",
                static_cast<unsigned long long>(writer.value().records_written()), path.c_str());
  }

  // --- 2. replay through the full pipeline ---
  PipelineConfig config;
  config.num_queues = 4;
  if (with_metrics) {
    config.metrics_enabled = true;
    config.metrics_interval = Duration::from_ms(250);
    config.metrics_prometheus_path = "/tmp/ruru_metrics.prom";
    config.metrics_json_path = "/tmp/ruru_metrics.jsonl";
  }
  if (with_trace) {
    config.trace_sample_n = 64;
    config.trace_json_path = "/tmp/ruru_trace.json";
    config.watchdog_enabled = true;
  }
  RuruPipeline pipeline(config, world.geo, world.as);
  pipeline.start();
  const auto replay = replay_pcap(pipeline, path);
  if (!replay.ok()) {
    std::fprintf(stderr, "replay failed: %s\n", replay.error().c_str());
    return 1;
  }
  pipeline.finish();
  std::printf("replayed at %.2f Mpps (%.2f Gbit/s equivalent)\n",
              replay.value().frames_per_sec() / 1e6, replay.value().gbits_per_sec());
  std::printf("pipeline: %s\n\n", pipeline.summary().to_string().c_str());
  if (with_metrics) {
    const auto transit =
        pipeline.tsdb().aggregate(std::string(obs::SelfIngestExporter::kPrefix) +
                                      "pipeline.transit_ns",
                                  TagSet{}.add("stat", "p95"), Timestamp{},
                                  Timestamp::from_sec(1e9));
    std::printf("telemetry: %zu metrics live, p95 transit %.2f ms "
                "(prometheus: /tmp/ruru_metrics.prom, jsonl: /tmp/ruru_metrics.jsonl)\n\n",
                pipeline.metrics().metric_count(),
                transit.count != 0 ? transit.max / 1e6 : 0.0);
  }
  if (with_trace) {
    std::printf("flight recorder: %llu events at 1-in-64 sampling "
                "(perfetto trace: /tmp/ruru_trace.json; SIGUSR1 dumps a live run)\n\n",
                static_cast<unsigned long long>(pipeline.tracer().events_emitted()));
  }

  // --- 3. run the baselines over the same pcap ---
  PpingEstimator pping;
  TcptraceEstimator tcptrace;
  Histogram pping_rtts, tcptrace_rtts;
  auto reader = PcapReader::open(path);
  if (!reader.ok()) return 1;
  while (auto rec = reader.value().next()) {
    PacketView view;
    if (parse_packet(rec->frame, view) != ParseStatus::kOk) continue;
    if (auto s = pping.process(view, rec->timestamp)) pping_rtts.record(s->rtt);
    if (auto s = tcptrace.process(view, rec->timestamp)) tcptrace_rtts.record(s->rtt);
  }

  const auto ruru_stats = pipeline.summary().tracker;
  std::printf("%-14s %12s %14s %16s\n", "estimator", "samples", "median half-RTT",
              "state entries (peak)");
  std::printf("%-14s %12llu %13.1fms %16s\n", "ruru",
              static_cast<unsigned long long>(ruru_stats.samples_emitted),
              pipeline.tsdb()
                  .aggregate("external_ms", TagSet{}, Timestamp{}, Timestamp::from_sec(1e6))
                  .median,
              "3 stamps/flow");
  std::printf("%-14s %12llu %13.1fms %16zu\n", "pping",
              static_cast<unsigned long long>(pping.stats().samples),
              static_cast<double>(pping_rtts.percentile(0.5)) / 1e6, pping.stats().peak_entries);
  std::printf("%-14s %12llu %13.1fms %16zu\n", "tcptrace",
              static_cast<unsigned long long>(tcptrace.stats().samples),
              static_cast<double>(tcptrace_rtts.percentile(0.5)) / 1e6,
              tcptrace.stats().peak_entries);

  std::printf("\nRuru trades sample volume for per-flow cost: one handshake sample per\n"
              "connection with three timestamps of state, vs per-packet state (pping)\n"
              "or per-flow-per-direction outstanding segments (tcptrace).\n");
  return 0;
}
