// The frontend feed: run the pipeline and emit exactly what the WebGL
// map consumes — 30 fps arc frames as JSON, wrapped in RFC 6455
// WebSocket text frames — plus an ASCII rendering of the final frame for
// terminals.
//
// Run: ./live_map_feed [seconds] [> feed.ndjson]

#include <cstdio>
#include <cstdlib>

#include "core/pipeline.hpp"
#include "core/replay.hpp"
#include "example_util.hpp"
#include "util/token_bucket.hpp"
#include "viz/ascii_map.hpp"
#include "viz/frame_encoder.hpp"
#include "viz/websocket.hpp"

int main(int argc, char** argv) {
  using namespace ruru;

  const double seconds = argc > 1 ? std::atof(argv[1]) : 5.0;
  const World world = examples::scenario_world();

  PipelineConfig config;
  config.num_queues = 4;
  RuruPipeline pipeline(config, world.geo, world.as);
  pipeline.start();

  auto model = scenarios::transpacific(/*seed=*/99, /*flows_per_sec=*/2000.0,
                                       Duration::from_sec(seconds));

  // Drive replay and cut frames at 30 fps of *scenario* time, exactly
  // like the live system cuts frames at 30 fps of wall time.
  FrameEncoder encoder;
  TokenBucket fps(30.0, 1.0);
  std::uint64_t frames_emitted = 0;
  std::uint64_t ws_bytes = 0;
  std::uint64_t arcs_total = 0;
  ArcFrame last_frame;

  while (auto f = model.next()) {
    const Timestamp t = f->timestamp;
    while (!pipeline.inject(f->frame, t)) {
    }
    if (fps.allow(t)) {
      const ArcFrame frame = pipeline.arcs().cut_frame(t);
      if (!frame.arcs.empty()) last_frame = frame;
      const std::string json = encoder.encode(frame);
      const auto ws = ws_encode_text(json);
      ws_bytes += ws.size();
      arcs_total += frame.arcs.size();
      ++frames_emitted;
      if (frames_emitted <= 3) {
        std::printf("frame %llu (%zu ws bytes): %s\n",
                    static_cast<unsigned long long>(frame.sequence), ws.size(),
                    json.substr(0, 160).c_str());
      }
    }
  }
  pipeline.finish();

  const auto summary = pipeline.summary();
  std::printf("\n%llu websocket frames, %.1f KB total, %.1f arcs/frame avg, "
              "%llu connections represented\n",
              static_cast<unsigned long long>(frames_emitted),
              static_cast<double>(ws_bytes) / 1e3,
              frames_emitted ? static_cast<double>(arcs_total) / static_cast<double>(frames_emitted) : 0.0,
              static_cast<unsigned long long>(summary.tracker.samples_emitted));

  std::printf("\nFinal frame on the terminal map ('.'=green '+'=yellow '*'=orange '#'=red):\n");
  AsciiMap map(100, 28);
  std::fputs(map.render(last_frame).c_str(), stdout);
  return 0;
}
