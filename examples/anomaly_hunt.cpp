// The §3 use case: find the nightly firewall update that adds +4000 ms
// to every connection opened in a short window — invisible to SNMP-scale
// averages, obvious to Ruru.
//
// Simulates three (time-compressed) days of traffic with the glitch,
// runs the pipeline with the periodic detector enabled, and prints:
//   * what a 5-minute SNMP-style average would have shown (nothing)
//   * what Ruru's per-flow TSDB shows per 10 s window
//   * the alerts raised
//
// Run: ./anomaly_hunt

#include <cstdio>

#include "core/pipeline.hpp"
#include "core/replay.hpp"
#include "example_util.hpp"
#include "viz/heatmap.hpp"

int main() {
  using namespace ruru;

  const World world = examples::scenario_world();

  // One "day" is compressed to 120 s; the firewall window is 5 s long
  // and adds 4000 ms to the external path.
  const Duration day = Duration::from_sec(120.0);
  const Duration window = Duration::from_sec(5.0);
  const Duration total = Duration::from_sec(360.0);  // 3 days

  PipelineConfig config;
  config.num_queues = 4;
  config.enable_periodic = true;
  config.periodic.period = day;
  config.periodic.bucket = Duration::from_sec(2.0);
  config.periodic.min_periods = 2;
  config.periodic.min_samples = 8;
  RuruPipeline pipeline(config, world.geo, world.as);
  pipeline.start();

  auto model = scenarios::firewall_glitch(/*seed=*/7, /*flows_per_sec=*/80.0, total, day, window);
  // Heatmap fed live off the bus, the way a dashboard module would run.
  auto heat_sub = pipeline.subscribe("ruru.latency", /*hwm=*/1 << 20);
  replay_scenario(pipeline, model);
  pipeline.finish();

  auto heatmap = LatencyHeatmap::with_default_bands(Duration::from_sec(10.0));
  std::vector<LatencySample> decoded;
  while (auto m = heat_sub->try_recv()) {
    if (m->frames.size() < 2) continue;
    decoded.clear();
    if (!decode_latency_payload(m->frames[1], decoded)) continue;  // v1 or batched v2
    for (const auto& s : decoded) heatmap.add(s.syn_time, s.total());
  }

  // --- what a coarse poll would have seen ---
  std::printf("== SNMP-style view (whole-run average) ==\n");
  const auto coarse = pipeline.tsdb().aggregate("total_ms", TagSet{}, Timestamp{},
                                                Timestamp{} + total);
  std::printf("   mean latency over %0.fs: %.1f ms  <- a bland average: no when, no\n"
              "   why, no affected-flow count. (On the real link the window was 30 s\n"
              "   of a whole day, so even the shift itself vanished.)\n\n",
              total.to_sec(), coarse.mean);

  // --- Ruru's fine-grained view ---
  std::printf("== Ruru windowed view (10 s windows, total_ms max) ==\n");
  const auto windows = pipeline.tsdb().window_aggregate("total_ms", TagSet{}, Timestamp{},
                                                        Timestamp{} + total,
                                                        Duration::from_sec(10.0));
  for (const auto& w : windows) {
    const int bars = static_cast<int>(w.stats.max / 150.0);
    std::printf("   t=%5.0fs  n=%4llu  median=%7.1fms  max=%8.1fms %s%s\n",
                w.window_start.to_sec(), static_cast<unsigned long long>(w.stats.count),
                w.stats.median, w.stats.max, std::string(static_cast<std::size_t>(std::min(bars, 40)), '#').c_str(),
                w.stats.max > 4000 ? "  <-- GLITCH" : "");
  }

  // --- latency heatmap: the glitch band lights up ---
  std::printf("\n== Latency heatmap (rows = latency bands, cols = 10 s buckets) ==\n");
  std::fputs(heatmap.render_ascii(Timestamp{}, Timestamp{} + total).c_str(), stdout);

  // --- alerts ---
  std::printf("\n== Alerts ==\n");
  for (const auto& a : pipeline.alerts().snapshot()) {
    std::printf("   [%s] %s score=%.1f %s\n", a.kind.c_str(), a.subject.c_str(), a.score,
                a.detail.c_str());
  }

  // --- the periodic detector's diagnosis ---
  if (const auto* det = pipeline.periodic_detector()) {
    std::printf("\n== Periodic diagnosis ==\n");
    for (const auto& f : det->findings()) {
      std::printf(
          "   recurring window %.0fs into each %.0fs 'day': median %s vs baseline %s "
          "(%d days, %llu flows)\n",
          f.offset_in_period.to_sec(), day.to_sec(), to_string(f.bucket_median).c_str(),
          to_string(f.baseline_median).c_str(), f.periods_seen,
          static_cast<unsigned long long>(f.samples));
    }
  }
  return 0;
}
