// pcap_inspect — operator CLI: per-flow handshake latencies from a pcap.
//
// Runs Ruru's Figure-1 measurement over a capture file (no pipeline, no
// threads — just the tracker) and prints one row per completed
// handshake, plus the distribution summary. The tcpdump-side companion
// to the live system.
//
// Run: ./pcap_inspect <file.pcap> [--max-rows N]
//      (with no arguments it generates and inspects a demo capture)

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "anomaly/heavy_hitters.hpp"
#include "capture/pcap.hpp"
#include "capture/scenarios.hpp"
#include "flow/handshake_tracker.hpp"
#include "net/packet_view.hpp"
#include "util/histogram.hpp"

namespace {

int make_demo_pcap(const std::string& path) {
  using namespace ruru;
  auto model = scenarios::transpacific(/*seed=*/1, /*flows_per_sec=*/40.0,
                                       Duration::from_sec(3.0));
  auto writer = PcapWriter::open(path);
  if (!writer.ok()) {
    std::fprintf(stderr, "%s\n", writer.error().c_str());
    return 1;
  }
  while (auto f = model.next()) {
    if (!writer.value().write(f->timestamp, f->frame).ok()) return 1;
  }
  std::printf("(no pcap given: generated demo capture %s, %llu frames)\n\n", path.c_str(),
              static_cast<unsigned long long>(writer.value().records_written()));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ruru;

  std::string path;
  long max_rows = 25;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--max-rows") == 0 && i + 1 < argc) {
      max_rows = std::atol(argv[++i]);
    } else {
      path = argv[i];
    }
  }
  if (path.empty()) {
    path = "/tmp/ruru_demo.pcap";
    if (make_demo_pcap(path) != 0) return 1;
  }

  auto reader = PcapReader::open(path);
  if (!reader.ok()) {
    std::fprintf(stderr, "error: %s\n", reader.error().c_str());
    return 1;
  }

  HandshakeTracker tracker(1 << 18);
  Histogram internal_h, external_h, total_h;
  SpaceSaving<std::uint32_t> top_servers(256);  // heavy-hitter SYN targets
  std::uint64_t frames = 0;
  std::uint64_t rows = 0;

  std::printf("%-38s %10s %10s %10s\n", "flow (client -> server)", "internal", "external",
              "total");
  while (auto rec = reader.value().next()) {
    ++frames;
    PacketView view;
    if (parse_packet(rec->frame, view) != ParseStatus::kOk) continue;
    if (view.tcp.is_syn_only() && view.is_v4) top_servers.add(view.ip4.dst.value());
    const auto rss = static_cast<std::uint32_t>(FlowKey::from(view.tuple()).hash());
    if (auto s = tracker.process(view, rec->timestamp, rss, 0)) {
      internal_h.record(s->internal());
      external_h.record(s->external());
      total_h.record(s->total());
      if (static_cast<long>(rows++) < max_rows) {
        char flow[64];
        std::snprintf(flow, sizeof flow, "%s:%u -> %s:%u", s->client.to_string().c_str(),
                      s->client_port, s->server.to_string().c_str(), s->server_port);
        std::printf("%-38s %10s %10s %10s\n", flow, to_string(s->internal()).c_str(),
                    to_string(s->external()).c_str(), to_string(s->total()).c_str());
      }
    }
  }
  if (static_cast<long>(rows) > max_rows) {
    std::printf("... (%llu more flows)\n", static_cast<unsigned long long>(rows - max_rows));
  }

  const auto& st = tracker.stats();
  std::printf("\n%llu frames, %llu SYNs (%llu retransmitted), %llu handshakes measured\n",
              static_cast<unsigned long long>(frames),
              static_cast<unsigned long long>(st.syn_seen),
              static_cast<unsigned long long>(st.syn_retransmissions),
              static_cast<unsigned long long>(st.samples_emitted));
  if (reader.value().truncated()) std::printf("warning: capture ends with a torn record\n");

  auto print_dist = [](const char* name, const Histogram& h) {
    std::printf("%-9s min=%-10s p50=%-10s mean=%-10s p99=%-10s max=%s\n", name,
                to_string(Duration{h.min()}).c_str(),
                to_string(Duration{h.percentile(0.5)}).c_str(),
                to_string(Duration{static_cast<std::int64_t>(h.mean())}).c_str(),
                to_string(Duration{h.percentile(0.99)}).c_str(),
                to_string(Duration{h.max()}).c_str());
  };
  if (total_h.count() != 0) {
    std::printf("\n");
    print_dist("internal", internal_h);
    print_dist("external", external_h);
    print_dist("total", total_h);
  }

  std::printf("\ntop SYN targets (space-saving sketch over %llu SYNs):\n",
              static_cast<unsigned long long>(top_servers.total()));
  for (const auto& e : top_servers.top(5)) {
    std::printf("  %-16s %6llu SYNs (±%llu)\n", Ipv4Address(e.key).to_string().c_str(),
                static_cast<unsigned long long>(e.count),
                static_cast<unsigned long long>(e.error));
  }
  return 0;
}
