#pragma once
// Shared helpers for the example programs: build the Geo/AS world that
// matches the canned scenario site plan.

#include <vector>

#include "capture/scenarios.hpp"
#include "geo/world.hpp"

namespace ruru::examples {

inline World scenario_world() {
  std::vector<SiteSpec> specs;
  auto convert = [&](const scenarios::Site& s) {
    SiteSpec spec;
    spec.city = s.city;
    spec.country = s.country;
    spec.latitude = s.latitude;
    spec.longitude = s.longitude;
    spec.asn = s.asn;
    spec.block_start = s.block.value();
    spec.block_size = 256;
    specs.push_back(std::move(spec));
  };
  for (const auto& s : scenarios::nz_sites()) convert(s);
  for (const auto& s : scenarios::world_sites()) convert(s);
  auto world = build_world(specs);
  if (!world.ok()) {
    throw std::runtime_error("failed to build world: " + world.error());
  }
  return std::move(world).value();
}

}  // namespace ruru::examples
