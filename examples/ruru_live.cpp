// ruru_live — the deployed system in miniature, running in real time.
//
//   * loads an operator config file (optional argv[1])
//   * paces simulated trans-Pacific traffic against the wall clock
//   * serves the live map feed on a real WebSocket port (connect any
//     RFC 6455 client to ws://127.0.0.1:<port>/live while it runs)
//   * redraws a Grafana-style dashboard once per second
//
// Run: ./ruru_live [--metrics] [--trace] [config_file] [seconds] [flows_per_sec]
// --metrics (or obs.enabled in the config file) turns on the live
// telemetry layer; the dashboard then shows self-ingested pipeline
// health series alongside the traffic it measures.
// --trace (or obs.trace_sample_n in the config file) arms the flight
// recorder at 1-in-64 sampling plus the stall watchdog — send SIGUSR1
// for a live flight-record dump — and writes /tmp/ruru_trace.json for
// ui.perfetto.dev on exit.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <vector>

#include "core/config_file.hpp"
#include "core/pipeline.hpp"
#include "example_util.hpp"
#include "util/token_bucket.hpp"
#include "viz/dashboard.hpp"
#include "viz/frame_encoder.hpp"
#include "viz/ws_server.hpp"

int main(int argc, char** argv) {
  using namespace ruru;
  using SteadyClock = std::chrono::steady_clock;

  bool with_metrics = false;
  bool with_trace = false;
  std::vector<const char*> args;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--metrics") == 0) {
      with_metrics = true;
    } else if (std::strcmp(argv[i], "--trace") == 0) {
      with_trace = true;
    } else {
      args.push_back(argv[i]);
    }
  }

  PipelineConfig config;
  config.num_queues = 2;
  if (!args.empty()) {
    auto loaded = pipeline_config_from_file(args[0], config);
    if (!loaded.ok()) {
      std::fprintf(stderr, "config error: %s\n", loaded.error().c_str());
      return 1;
    }
    config = loaded.value();
    std::printf("loaded config from %s\n", args[0]);
  }
  if (with_metrics) config.metrics_enabled = true;
  if (with_trace) {
    config.trace_sample_n = 64;
    config.trace_json_path = "/tmp/ruru_trace.json";
    config.watchdog_enabled = true;
  }
  const double seconds = args.size() > 1 ? std::atof(args[1]) : 5.0;
  const double flows_per_sec = args.size() > 2 ? std::atof(args[2]) : 800.0;

  const World world = examples::scenario_world();
  RuruPipeline pipeline(config, world.geo, world.as);
  pipeline.start();

  WsServer ws;
  if (auto s = ws.bind(0); !s.ok()) {
    std::fprintf(stderr, "ws bind failed: %s\n", s.error().c_str());
    return 1;
  }
  std::printf("live map feed: ws://127.0.0.1:%u/live\n", ws.port());

  auto model = scenarios::transpacific(/*seed=*/31337, flows_per_sec,
                                       Duration::from_sec(seconds));
  FrameEncoder encoder;
  TokenBucket fps(30.0, 1.0);
  TokenBucket dashboard_tick(1.0, 1.0);
  Dashboard dashboard(pipeline.tsdb(), [] {
    DashboardOptions o;
    o.graph_width = 60;
    o.graph_height = 6;
    o.ascii_only = true;
    return o;
  }());

  const auto wall_start = SteadyClock::now();
  std::uint64_t ws_frames = 0;
  while (auto f = model.next()) {
    // Pace against the wall clock: sleep until this frame's moment.
    const auto due = wall_start + std::chrono::nanoseconds(f->timestamp.ns);
    std::this_thread::sleep_until(due);
    while (!pipeline.inject(f->frame, f->timestamp)) {
    }

    if (fps.allow(f->timestamp)) {
      const ArcFrame frame = pipeline.arcs().cut_frame(f->timestamp);
      ws.broadcast_text(encoder.encode(frame));
      ++ws_frames;
    }
    if (dashboard_tick.allow(f->timestamp)) {
      const Timestamp now = f->timestamp;
      const Timestamp from = now.ns > Duration::from_sec(30.0).ns
                                 ? now - Duration::from_sec(30.0)
                                 : Timestamp{};
      std::printf("\n-- t=%.1fs  (ws clients: %zu, frames pushed: %llu) --\n", now.to_sec(),
                  ws.client_count(), static_cast<unsigned long long>(ws_frames));
      std::fputs(dashboard.render_stats_strip("total_ms", TagSet{}, from, now).c_str(), stdout);
      std::fputs(dashboard.render_graph("total_ms", TagSet{}, from, now, "median").c_str(),
                 stdout);
      std::fflush(stdout);
    }
  }
  pipeline.finish();
  ws.close();

  std::printf("\nfinal: %s\n", pipeline.summary().to_string().c_str());
  if (pipeline.tracer().enabled()) {
    std::printf("flight recorder: %llu events (perfetto trace: %s)\n",
                static_cast<unsigned long long>(pipeline.tracer().events_emitted()),
                config.trace_json_path.c_str());
  }
  std::fputs(dashboard.render_pair_table(pipeline.city_pairs().summaries()).c_str(), stdout);
  return 0;
}
